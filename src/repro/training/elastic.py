"""Elastic data-parallel training: a supervised worker pool that degrades
instead of dying.

The coordinator owns the canonical parameters, optimizer, schedule,
snapshots, and signal handling; N gradient workers own nothing but a model
replica and a shard of each step's micro-batches. Per step the coordinator
broadcasts parameters, dispatches the step's micro-batches over the live
membership (:class:`~repro.training.sharding.ShardPlan`), collects one
gradient contribution per micro-batch, folds them with the pinned
:func:`~repro.training.sharding.tree_reduce` order, and applies one
optimizer step. Because every micro-batch's forward/backward is a pure
function of ``(parameters, micro-batch index)`` — data order and RNG
streams are derived statelessly from the run seed — the trained parameters
are **bit-identical at every world size**, including after worker deaths,
restarts, and degraded re-sharding.

Supervision state machine (per worker)::

    SPAWNED ── heartbeat ──▶ LIVE ──┬─ death/timeout/corrupt ─▶ BACKOFF
                                    │        (budget left)        │
                                    │                        spawn after
                                    │                      backoff * 2^k
                                    └─ budget exhausted ──▶ RETIRED
    all RETIRED ──▶ coordinator computes inline (degrade, don't die)

Faults the supervisor handles: a worker process dying (non-zero exit,
kill -9), heartbeats stalling past ``worker_timeout``, and non-finite
gradient contributions (corruption). Outstanding micro-batches of a failed
worker are re-queued and recomputed — bit-exactly, see above — on the
survivors. A non-finite gradient that *reproduces* on recomputation is not
corruption but divergence, and raises
:class:`~repro.training.trainer.TrainingDiverged` (recoverable through the
same snapshot-rollback machinery as the single-process trainer).

Workers mask SIGINT, so Ctrl-C on the process group interrupts only the
coordinator, which finishes the in-flight step, writes exactly one
graceful final snapshot, shuts the pool down, and raises
:class:`~repro.training.trainer.TrainingInterrupted`.
"""

from __future__ import annotations

import math
import os
import signal as signal_module
import threading
import time
import traceback
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Callable, Mapping, Sequence

import multiprocessing

import numpy as np

from repro.data.batching import Batch, BatchIterator, collate, example_source_lengths
from repro.data.dataset import EncodedExample
from repro.data.shardstore import CorpusChangedError
from repro.models.base import QuestionGenerator
from repro.observability import (
    Telemetry,
    TerminalSink,
    emit_worker_pool,
    get_telemetry,
    param_norm,
    process_rss_bytes,
    scaling_efficiency,
)
from repro.optim import SGD, HalveAtEpoch, NonFiniteGradError, clip_grad_norm
from repro.optim.optimizers import Optimizer
from repro.optim.schedules import Schedule
from repro.training.history import EpochRecord, RecoveryEvent, TrainingHistory
from repro.training.resilience import ResilienceConfig, SnapshotStore
from repro.training.sharding import (
    ShardPlan,
    epoch_batch_plan,
    reseed_model_rngs,
    tree_reduce_gradients,
)
from repro.training.trainer import (
    TrainingDiverged,
    TrainingInterrupted,
    evaluate_mean_loss,
)

__all__ = [
    "ElasticConfig",
    "WorkerFaultPlan",
    "ElasticTrainer",
    "mask_worker_signals",
    "compute_microbatch",
]

_SNAP_FORMAT_KEY = "elastic"
_KILL_EXIT_CODE = 37
"""Exit code of a fault-injected worker kill (distinguishable in tests)."""
_STALL_SECONDS = 3600.0
"""A stalled worker sleeps this long; the supervisor kills it far sooner."""


# ----------------------------------------------------------------------
# Configuration and fault seam
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ElasticConfig:
    """Shape and supervision policy of the worker pool.

    Parameters
    ----------
    workers:
        Gradient worker processes. ``0`` runs every micro-batch inline in
        the coordinator — the same math through the same code path, useful
        for tests and as the floor the pool degrades to.
    microbatches_per_step:
        Micro-batches aggregated into one optimizer step. This — not the
        world size — defines the optimization trajectory: two runs with the
        same value produce bit-identical parameters at any worker count.
        ``None`` pins it to ``max(1, workers)`` at trainer construction.
    worker_timeout:
        Seconds without a heartbeat before a worker is declared dead.
    heartbeat_interval:
        How often workers send heartbeats (must be < ``worker_timeout``).
    poll_interval:
        Coordinator's supervision cadence while waiting on results.
    max_worker_restarts:
        Per-worker restart budget; exhausting it retires the rank and
        re-shards its slots onto the survivors (degraded mode).
    restart_backoff:
        Base delay before respawning a failed worker; doubles per restart
        of that rank (``backoff * 2^k``).
    start_method:
        Multiprocessing start method. ``fork`` (default) lets workers
        inherit the model replica and examples without pickling.
    """

    workers: int = 2
    microbatches_per_step: int | None = None
    worker_timeout: float = 10.0
    heartbeat_interval: float = 0.25
    poll_interval: float = 0.02
    max_worker_restarts: int = 2
    restart_backoff: float = 0.1
    start_method: str = "fork"

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.microbatches_per_step is not None and self.microbatches_per_step < 1:
            raise ValueError(
                f"microbatches_per_step must be >= 1, got {self.microbatches_per_step}"
            )
        if self.worker_timeout <= 0:
            raise ValueError(f"worker_timeout must be positive, got {self.worker_timeout}")
        if not 0 < self.heartbeat_interval < self.worker_timeout:
            raise ValueError(
                f"heartbeat_interval must be in (0, worker_timeout), "
                f"got {self.heartbeat_interval} vs {self.worker_timeout}"
            )
        if self.poll_interval <= 0:
            raise ValueError(f"poll_interval must be positive, got {self.poll_interval}")
        if self.max_worker_restarts < 0:
            raise ValueError(
                f"max_worker_restarts must be >= 0, got {self.max_worker_restarts}"
            )
        if self.restart_backoff < 0:
            raise ValueError(f"restart_backoff must be >= 0, got {self.restart_backoff}")
        if self.workers > 0 and self.start_method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"start method {self.start_method!r} unavailable on this platform "
                f"(have {multiprocessing.get_all_start_methods()}); use workers=0"
            )


@dataclass(frozen=True)
class WorkerFaultPlan:
    """Deterministic worker-level fault seam (chaos testing only).

    Faults key on ``(rank, nth compute command)`` — 1-based, counted by the
    worker itself — so injection lands at an exact step boundary no matter
    how supervision re-shards the run. In the style of
    :mod:`repro.serving.faults`: the plan is plain data, injection is
    deterministic, and production runs simply pass ``None``.
    """

    kill_on_compute: Mapping[int, int] = field(default_factory=dict)
    """rank → die (``os._exit``) when its Nth compute command arrives."""
    stall_on_compute: Mapping[int, int] = field(default_factory=dict)
    """rank → stop heartbeating and hang on its Nth compute command."""
    corrupt_on_compute: Mapping[int, int] = field(default_factory=dict)
    """rank → poison its Nth gradient with NaN before sending."""

    def action_for(self, rank: int, nth_compute: int) -> str | None:
        if self.kill_on_compute.get(rank) == nth_compute:
            return "kill"
        if self.stall_on_compute.get(rank) == nth_compute:
            return "stall"
        if self.corrupt_on_compute.get(rank) == nth_compute:
            return "corrupt"
        return None


def mask_worker_signals() -> None:
    """Make a worker deaf to SIGINT.

    Ctrl-C delivers SIGINT to the whole foreground process group; only the
    coordinator may react (it writes the single graceful final snapshot).
    SIGTERM stays at its default so the supervisor can terminate workers.
    """
    signal_module.signal(signal_module.SIGINT, signal_module.SIG_IGN)


# ----------------------------------------------------------------------
# Micro-batch computation (shared by workers and the inline fallback)
# ----------------------------------------------------------------------
def compute_microbatch(
    model: QuestionGenerator,
    examples: Sequence[EncodedExample],
    run_seed: int,
    epoch: int,
    slot: int,
    indices: Sequence[int],
    pad_id: int = 0,
) -> tuple[list[np.ndarray], float, int, float]:
    """Forward/backward one micro-batch; returns (grads, loss_sum, tokens, seconds).

    Deterministic in ``(parameters, run_seed, epoch, slot)``: the model's
    RNG streams are reseeded for the slot first, so a worker, a restarted
    worker, and the coordinator's inline fallback all produce identical
    bytes for the same micro-batch.
    """
    start = time.perf_counter()
    reseed_model_rngs(model, run_seed, epoch, slot)
    model.train()
    batch: Batch = collate([examples[i] for i in indices], pad_id=pad_id)
    loss = model.loss(batch)
    loss_value = loss.item()
    if math.isfinite(loss_value):
        loss.backward()
    # A non-finite loss is never backpropagated: the zero grads below plus
    # the NaN loss_sum make _contribution_finite reject the contribution.
    grads = [
        param.grad.copy() if param.grad is not None else np.zeros_like(param.data)
        for param in model.parameters()
    ]
    model.zero_grad()
    tokens = batch.num_target_tokens
    return grads, loss_value * tokens, tokens, time.perf_counter() - start


def _contribution_finite(grads: Sequence[np.ndarray], loss_sum: float) -> bool:
    if not math.isfinite(loss_sum):
        return False
    return all(np.isfinite(grad).all() for grad in grads)


def _zero_accum() -> dict:
    return {"loss": 0.0, "tokens": 0, "norm": 0.0, "batches": 0}


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(
    rank: int,
    conn,
    model: QuestionGenerator,
    examples: Sequence[EncodedExample],
    run_seed: int,
    pad_id: int,
    heartbeat_interval: float,
    fault_plan: WorkerFaultPlan | None,
) -> None:
    """Worker loop: load params, compute assigned micro-batches, heartbeat."""
    mask_worker_signals()
    send_lock = threading.Lock()
    stalled = threading.Event()

    def _send(message) -> bool:
        try:
            with send_lock:
                conn.send(message)
            return True
        except (BrokenPipeError, OSError):
            return False

    def _heartbeat() -> None:
        # Each heartbeat carries the worker's current RSS: with the corpus
        # mmap-shared the gauge stays near the model-replica size, which is
        # what makes the shard store's no-materialization claim observable.
        while not stalled.is_set():
            if not _send(("hb", rank, process_rss_bytes())):
                return
            stalled.wait(heartbeat_interval)

    heartbeat_thread = threading.Thread(
        target=_heartbeat, name=f"elastic-hb-{rank}", daemon=True
    )
    heartbeat_thread.start()
    computes = 0
    try:
        _send(("hello", rank, os.getpid()))
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "shutdown":
                return
            if kind == "params":
                model.load_state_dict(message[1])
                continue
            if kind == "compute":
                _, epoch, slot, indices = message
                computes += 1
                action = fault_plan.action_for(rank, computes) if fault_plan else None
                if action == "kill":
                    os._exit(_KILL_EXIT_CODE)
                if action == "stall":
                    # Simulated hang: heartbeats stop, the process lingers.
                    # The supervisor must notice via the timeout and SIGKILL.
                    stalled.set()
                    time.sleep(_STALL_SECONDS)
                    continue
                grads, loss_sum, tokens, seconds = compute_microbatch(
                    model, examples, run_seed, epoch, slot, indices, pad_id
                )
                if action == "corrupt":
                    grads[0] = grads[0].copy()
                    grads[0].flat[0] = float("nan")
                _send(("grad", rank, slot, grads, loss_sum, tokens, seconds))
    except (EOFError, KeyboardInterrupt):
        return
    except Exception:  # noqa: BLE001 - a worker must report, not vanish
        _send(("error", rank, traceback.format_exc()))
        os._exit(1)


# ----------------------------------------------------------------------
# Worker handle (coordinator side)
# ----------------------------------------------------------------------
@dataclass
class _WorkerHandle:
    rank: int
    process: object | None = None
    conn: object | None = None
    last_heartbeat: float = 0.0
    rss_bytes: int = 0
    restarts_used: int = 0
    status: str = "live"  # live | backoff | retired
    backoff_until: float = 0.0
    params_version_sent: int = -1

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None


class ElasticTrainer:
    """Coordinator for multiprocess data-parallel training.

    Drop-in sibling of :class:`~repro.training.trainer.Trainer` for the
    same model families: accepts the shared :class:`TrainerConfig`,
    :class:`ResilienceConfig` (snapshots, resume, graceful signals,
    divergence rollback), telemetry, and optimizer/schedule injection —
    but scales the gradient computation over an elastic pool of worker
    processes as described in the module docstring.

    Parameters
    ----------
    model:
        Coordinator replica; holds the canonical parameters.
    examples:
        Training examples (a :class:`~repro.data.dataset.QGDataset` works).
        Workers inherit them at fork time — nothing is re-encoded per step.
    batch_size / bucket_multiplier / pad_id:
        Micro-batch composition, identical semantics to
        :class:`~repro.data.batching.BatchIterator`.
    run_seed:
        Root of the deterministic derivation tree (data order, dropout
        streams). Two runs with equal ``run_seed``, config, and
        ``microbatches_per_step`` are bit-identical at any world size.
    dev_iterator:
        Optional; enables per-epoch dev loss, early stopping, and best-dev
        parameter tracking, evaluated inline on the coordinator.
    fault_plan:
        Deterministic chaos seam (:class:`WorkerFaultPlan`); None in
        production.
    """

    def __init__(
        self,
        model: QuestionGenerator,
        examples: Sequence[EncodedExample],
        batch_size: int,
        dev_iterator: BatchIterator | None = None,
        config=None,
        elastic: ElasticConfig | None = None,
        optimizer: Optimizer | None = None,
        schedule: Schedule | None = None,
        epoch_callback: Callable[[EpochRecord], None] | None = None,
        resilience: ResilienceConfig | None = None,
        telemetry: Telemetry | None = None,
        fault_plan: WorkerFaultPlan | None = None,
        pad_id: int = 0,
        bucket_multiplier: int = 16,
        run_seed: int = 0,
    ) -> None:
        from repro.training.trainer import TrainerConfig

        self.model = model
        # Indexable containers (lists, QGDataset, the shard store's lazy
        # StreamingQGDataset) are used in place — workers inherit the mmap
        # handles at fork time and share OS pages instead of each holding a
        # materialized copy. Plain iterables are drained once into a list.
        if hasattr(examples, "__getitem__") and hasattr(examples, "__len__"):
            self.examples = examples
        else:
            self.examples = list(examples)
        if not len(self.examples):
            raise ValueError("elastic training needs a non-empty example list")
        self.corpus_digest = getattr(examples, "corpus_digest", None)
        self.batch_size = int(batch_size)
        self.bucket_multiplier = bucket_multiplier
        self.pad_id = pad_id
        self.run_seed = int(run_seed)
        self.dev_iterator = dev_iterator
        self.config = config or TrainerConfig()
        self.elastic = elastic or ElasticConfig()
        self.microbatches_per_step = (
            self.elastic.microbatches_per_step
            if self.elastic.microbatches_per_step is not None
            else max(1, self.elastic.workers)
        )
        if telemetry is None:
            telemetry = get_telemetry()
            if not telemetry.enabled:
                telemetry = Telemetry([TerminalSink()])
        self.telemetry = telemetry
        self.optimizer = optimizer or SGD(model.parameters(), lr=self.config.learning_rate)
        self.schedule = schedule or HalveAtEpoch(self.optimizer, self.config.halve_at_epoch)
        self.epoch_callback = epoch_callback
        self.resilience = resilience
        self.fault_plan = fault_plan
        self._store = (
            SnapshotStore(resilience.directory, keep_last=resilience.keep_last)
            if resilience
            else None
        )
        self.history = TrainingHistory()
        self.best_state: dict | None = None
        self._handles: dict[int, _WorkerHandle] = {}
        self._ctx = None
        self._params_version = 0
        self._step = 0
        self._best_dev = float("inf")
        self._epochs_without_improvement = 0
        self._retries_used = 0
        self._recovery_events: list[RecoveryEvent] = []
        self._pending_backoff: float | None = None
        self._resume_accum: dict | None = None
        self._interrupt_signum: int | None = None
        self._degraded = False
        self._inline_announced = False
        self.worker_deaths = 0
        self.worker_restarts = 0
        self.redispatched = 0

    # ------------------------------------------------------------------
    # Pool management
    # ------------------------------------------------------------------
    def _spawn_pool(self) -> None:
        if self.elastic.workers == 0 or self._handles:
            return
        self._ctx = multiprocessing.get_context(self.elastic.start_method)
        for rank in range(self.elastic.workers):
            self._handles[rank] = _WorkerHandle(rank=rank)
            self._spawn_worker(self._handles[rank])

    def _spawn_worker(self, handle: _WorkerHandle) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        # Injected faults are transient by definition: they fire in a rank's
        # FIRST incarnation only. A restarted worker counts its compute
        # commands from 1 again, so handing it the same plan would re-fire
        # the fault every respawn and burn the whole restart budget.
        # Persistent faults are modeled with max_worker_restarts=0 instead.
        fault_plan = self.fault_plan if handle.restarts_used == 0 else None
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                handle.rank,
                child_conn,
                self.model,
                self.examples,
                self.run_seed,
                self.pad_id,
                self.elastic.heartbeat_interval,
                fault_plan,
            ),
            name=f"elastic-worker-{handle.rank}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.last_heartbeat = time.monotonic()
        handle.status = "live"
        handle.params_version_sent = -1

    def _kill_worker_process(self, handle: _WorkerHandle) -> None:
        if handle.process is not None:
            if handle.process.is_alive():
                handle.process.kill()
            handle.process.join(timeout=5.0)
            handle.process = None
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:
                pass
            handle.conn = None

    def shutdown(self) -> None:
        """Stop and reap every worker; idempotent, never leaves orphans."""
        for handle in self._handles.values():
            if handle.conn is not None:
                try:
                    handle.conn.send(("shutdown",))
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + 5.0
        for handle in self._handles.values():
            if handle.process is not None:
                handle.process.join(timeout=max(0.1, deadline - time.monotonic()))
            self._kill_worker_process(handle)
        self._handles.clear()

    def live_worker_pids(self) -> list[int]:
        """PIDs of workers still running (empty after a clean shutdown)."""
        return [
            handle.pid
            for handle in self._handles.values()
            if handle.process is not None and handle.process.is_alive()
        ]

    def _live_handles(self) -> list[_WorkerHandle]:
        return [h for h in self._handles.values() if h.status == "live"]

    @property
    def worker_rss(self) -> dict[int, int]:
        """Rank → latest heartbeat-reported RSS in bytes (live workers only).

        Zero until a rank's first RSS-bearing heartbeat arrives; gauged per
        step as ``elastic.worker<rank>.rss_mb``.
        """
        return {
            h.rank: h.rss_bytes for h in self._live_handles() if h.rss_bytes > 0
        }

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def _fail_worker(
        self, handle: _WorkerHandle, cause: str, outstanding: dict
    ) -> list[tuple]:
        """Kill, re-queue, and either schedule a restart or retire the rank.

        Returns the failed worker's outstanding items (slot-sorted) so the
        caller can push them back onto the pending queue.
        """
        self.worker_deaths += 1
        requeued = [item for _, item in sorted(outstanding.pop(handle.rank, {}).items())]
        self.redispatched += len(requeued)
        self._kill_worker_process(handle)
        self.telemetry.counter("elastic.worker_deaths")
        self.telemetry.run_marker(
            "worker_dead", rank=handle.rank, cause=cause, step=self._step
        )
        if handle.restarts_used >= self.elastic.max_worker_restarts:
            handle.status = "retired"
            survivors = sorted(
                h.rank for h in self._handles.values() if h.status != "retired"
            )
            self._note_degraded(survivors)
            return requeued
        handle.restarts_used += 1
        self.worker_restarts += 1
        backoff = self.elastic.restart_backoff * (2 ** (handle.restarts_used - 1))
        handle.status = "backoff"
        handle.backoff_until = time.monotonic() + backoff
        self.telemetry.counter("elastic.worker_restarts")
        self.telemetry.run_marker(
            "worker_restart_scheduled",
            rank=handle.rank,
            restart=handle.restarts_used,
            backoff_seconds=backoff,
            step=self._step,
        )
        return requeued

    def _note_degraded(self, survivors: list[int]) -> None:
        self._degraded = True
        self.telemetry.run_marker(
            "degraded", survivors=survivors, step=self._step
        )
        self.telemetry.log(
            f"[elastic] degraded mode: re-sharding onto workers {survivors or '[inline]'}"
        )

    def _supervise(self, outstanding: dict, pending: deque) -> None:
        """One supervision pass: detect deaths/stalls, respawn due workers."""
        now = time.monotonic()
        for handle in list(self._handles.values()):
            if handle.status == "live":
                if handle.process is None or not handle.process.is_alive():
                    pending.extend(self._fail_worker(handle, "process_died", outstanding))
                elif now - handle.last_heartbeat > self.elastic.worker_timeout:
                    pending.extend(
                        self._fail_worker(handle, "heartbeat_timeout", outstanding)
                    )
            elif handle.status == "backoff" and now >= handle.backoff_until:
                self._spawn_worker(handle)
                self.telemetry.run_marker(
                    "worker_restarted", rank=handle.rank, step=self._step
                )

    def _broadcast_params(self, handles: Sequence[_WorkerHandle]) -> None:
        payload = None
        for handle in handles:
            if handle.params_version_sent == self._params_version or handle.conn is None:
                continue
            if payload is None:
                payload = self.model.state_dict()
            try:
                handle.conn.send(("params", payload))
                handle.params_version_sent = self._params_version
            except (BrokenPipeError, OSError):
                pass  # the next supervision pass reaps it

    def _dispatch(self, pending: deque, outstanding: dict) -> None:
        """Assign every pending micro-batch to the live membership."""
        live = sorted(self._live_handles(), key=lambda h: h.rank)
        if not live:
            return
        self._broadcast_params(live)
        plan = ShardPlan(tuple(h.rank for h in live))
        by_rank = {h.rank: h for h in live}
        while pending:
            epoch, slot, indices = pending.popleft()
            handle = by_rank[plan.owner_of(slot)]
            try:
                handle.conn.send(("compute", epoch, slot, indices))
            except (BrokenPipeError, OSError):
                pending.appendleft((epoch, slot, indices))
                return  # reaped next supervision pass, then re-dispatched
            outstanding.setdefault(handle.rank, {})[slot] = (epoch, slot, indices)

    def _drain_ready(
        self, outstanding: dict, pending: deque, results: dict, nan_counts: dict
    ) -> None:
        """Read every message currently available on worker pipes."""
        conns = {
            handle.conn: handle
            for handle in self._live_handles()
            if handle.conn is not None
        }
        if not conns:
            time.sleep(self.elastic.poll_interval)
            return
        ready = mp_connection.wait(list(conns), timeout=self.elastic.poll_interval)
        for conn in ready:
            handle = conns[conn]
            while True:
                try:
                    if not conn.poll():
                        break
                    message = conn.recv()
                except (EOFError, OSError):
                    # Pipe gone: the liveness check next pass reaps the rank.
                    break
                kind = message[0]
                if kind in ("hb", "hello"):
                    handle.last_heartbeat = time.monotonic()
                    if kind == "hb" and len(message) > 2:
                        handle.rss_bytes = int(message[2])
                elif kind == "grad":
                    _, rank, slot, grads, loss_sum, tokens, seconds = message
                    handle.last_heartbeat = time.monotonic()
                    item = outstanding.get(rank, {}).pop(slot, None)
                    if not _contribution_finite(grads, loss_sum):
                        self._record_nonfinite(slot, nan_counts)
                        # Corruption: kill the worker, recompute the slot
                        # elsewhere (bit-exactly — see module docstring).
                        if item is not None:
                            pending.append(item)
                        pending.extend(
                            self._fail_worker(handle, "corrupt_gradient", outstanding)
                        )
                        break
                    results[slot] = (grads, loss_sum, tokens, seconds, rank)
                elif kind == "error":
                    self.telemetry.log(
                        f"[elastic] worker {handle.rank} raised:\n{message[2]}"
                    )
                    pending.extend(self._fail_worker(handle, "exception", outstanding))
                    break

    def _record_nonfinite(self, slot: int, nan_counts: dict, fatal: bool = False) -> None:
        """A NaN/inf gradient arrived: corruption once, divergence twice.

        The first non-finite result for a slot is treated as a worker fault
        (the contribution is dropped and recomputed elsewhere); if the
        recomputation is non-finite too — same inputs, same parameters,
        same bytes — the model itself has diverged and the run escalates to
        :class:`TrainingDiverged` for the snapshot-rollback path. Inline
        recomputation on the coordinator is authoritative (``fatal=True``):
        there is no second machine to blame.
        """
        nan_counts[slot] = nan_counts.get(slot, 0) + (2 if fatal else 1)
        self.telemetry.counter("elastic.nonfinite_contributions")
        if nan_counts[slot] >= 2:
            raise TrainingDiverged(
                f"micro-batch {slot} produced a non-finite gradient "
                f"deterministically (step {self._step + 1}); this is "
                "divergence, not worker corruption",
                cause="nonfinite_grad",
            )

    def _execute_step(
        self, epoch: int, slot_items: Sequence[tuple[int, tuple[int, ...]]]
    ) -> dict[int, tuple]:
        """Run one global step's micro-batches over the pool; supervise.

        Returns slot → (grads, loss_sum, tokens, seconds, rank) for every
        slot, surviving worker deaths, stalls, corruption, and — when the
        whole pool is gone — computing inline on the coordinator.
        """
        pending: deque = deque((epoch, slot, indices) for slot, indices in slot_items)
        outstanding: dict[int, dict[int, tuple]] = {}
        results: dict[int, tuple] = {}
        nan_counts: dict[int, int] = {}
        want = len(slot_items)
        while len(results) < want:
            self._supervise(outstanding, pending)
            if self._live_handles():
                self._dispatch(pending, outstanding)
                self._drain_ready(outstanding, pending, results, nan_counts)
                continue
            if any(h.status == "backoff" for h in self._handles.values()):
                # Restarts are due shortly; wait for the pool to heal.
                time.sleep(self.elastic.poll_interval)
                continue
            # Degrade, don't die: no pool left — the coordinator computes.
            if not self._inline_announced and self.elastic.workers > 0:
                self._inline_announced = True
                self.telemetry.run_marker("inline_fallback", step=self._step)
                self.telemetry.log(
                    "[elastic] no live workers remain; computing inline"
                )
            while pending:
                item_epoch, slot, indices = pending.popleft()
                grads, loss_sum, tokens, seconds = compute_microbatch(
                    self.model, self.examples, self.run_seed,
                    item_epoch, slot, indices, self.pad_id,
                )
                if not _contribution_finite(grads, loss_sum):
                    self._record_nonfinite(slot, nan_counts, fatal=True)
                results[slot] = (grads, loss_sum, tokens, seconds, -1)
        return results

    # ------------------------------------------------------------------
    # Snapshots / resume
    # ------------------------------------------------------------------
    def _capture_state(
        self, phase: str, epoch: int, steps_done: int, accum: dict
    ) -> tuple[dict, dict]:
        optimizer_state = self.optimizer.state_dict()
        arrays = {f"model::{k}": v for k, v in self.model.state_dict().items()}
        arrays.update({f"opt::{k}": v for k, v in optimizer_state["arrays"].items()})
        if self.best_state is not None:
            arrays.update({f"best::{k}": v for k, v in self.best_state.items()})
        meta = {
            "phase": phase,
            "epoch": epoch,
            "steps_done": steps_done,
            "accum": accum,
            _SNAP_FORMAT_KEY: {
                "run_seed": self.run_seed,
                "microbatches_per_step": self.microbatches_per_step,
                "batch_size": self.batch_size,
                "corpus_digest": self.corpus_digest,
            },
            "best_dev": None if math.isinf(self._best_dev) else self._best_dev,
            "epochs_without_improvement": self._epochs_without_improvement,
            "retries_used": self._retries_used,
            "has_best": self.best_state is not None,
            "optimizer": optimizer_state["scalars"],
            "schedule": self.schedule.state_dict(),
            "history": self.history.to_payload(),
            "telemetry": self.telemetry.state(),
        }
        return arrays, meta

    def _snapshot(
        self, phase: str, epoch: int, steps_done: int, accum: dict | None = None
    ) -> str | None:
        if self._store is None:
            return None
        arrays, meta = self._capture_state(
            phase, epoch, steps_done, accum if accum is not None else _zero_accum()
        )
        return self._store.save(self._step, arrays, meta)

    def _restore_state(self, arrays: dict, meta: dict) -> tuple[int, int]:
        stamp = meta.get(_SNAP_FORMAT_KEY)
        if not stamp:
            raise ValueError(
                "snapshot was not written by the elastic runtime; resume it "
                "with the single-process Trainer instead"
            )
        for key, current in (
            ("run_seed", self.run_seed),
            ("microbatches_per_step", self.microbatches_per_step),
            ("batch_size", self.batch_size),
        ):
            if stamp.get(key) != current:
                raise ValueError(
                    f"elastic resume mismatch: snapshot {key}={stamp.get(key)} "
                    f"vs configured {current} — the optimization trajectory "
                    "would silently change"
                )
        # Corpus identity: snapshots taken from a shard store carry its
        # manifest digest. Resuming against a store whose manifest changed
        # (re-ingest, edited shards) is a typed rejection, not a silently
        # different trajectory. A digest-less side (in-memory lists) cannot
        # be verified and is allowed — parity there is pinned by tests.
        snapshot_digest = stamp.get("corpus_digest")
        if (
            snapshot_digest is not None
            and self.corpus_digest is not None
            and snapshot_digest != self.corpus_digest
        ):
            raise CorpusChangedError(
                f"snapshot was trained on corpus {snapshot_digest[:12]}… but the "
                f"configured shard store is {self.corpus_digest[:12]}… — the corpus "
                "changed under the run; re-ingest or point at the original store"
            )
        model_state = {
            k.split("::", 1)[1]: v for k, v in arrays.items() if k.startswith("model::")
        }
        opt_arrays = {k.split("::", 1)[1]: v for k, v in arrays.items() if k.startswith("opt::")}
        best_state = {k.split("::", 1)[1]: v for k, v in arrays.items() if k.startswith("best::")}
        self.model.load_state_dict(model_state)
        self.optimizer.load_state_dict({"scalars": meta["optimizer"], "arrays": opt_arrays})
        self.schedule.load_state_dict(meta["schedule"])
        self.best_state = {k: v.copy() for k, v in best_state.items()} if meta["has_best"] else None
        self.history = TrainingHistory.from_payload(meta["history"])
        if len(self.history.events) > len(self._recovery_events):
            self._recovery_events = list(self.history.events)
        self.history.events = list(self._recovery_events)
        self._best_dev = float("inf") if meta["best_dev"] is None else float(meta["best_dev"])
        self._epochs_without_improvement = int(meta["epochs_without_improvement"])
        self._retries_used = max(self._retries_used, int(meta["retries_used"]))
        self._step = int(meta["step"])
        self._params_version += 1

        telemetry_state = meta.get("telemetry")
        if telemetry_state and telemetry_state.get("cursor") is not None:
            self.telemetry.restore(telemetry_state)
        self.telemetry.run_marker(
            "resume", step=self._step, epoch=int(meta["epoch"]), phase=str(meta["phase"])
        )
        epoch, steps_done = int(meta["epoch"]), int(meta["steps_done"])
        mid_epoch = meta["phase"] in ("mid_epoch", "interrupt") and steps_done > 0
        self._resume_accum = dict(meta["accum"]) if mid_epoch else None
        if meta["phase"] == "epoch_end":
            return epoch + 1, 0
        return epoch, steps_done if mid_epoch else 0

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    @contextmanager
    def _signal_guard(self):
        if (
            self.resilience is None
            or not self.resilience.handle_signals
            or threading.current_thread() is not threading.main_thread()
        ):
            yield
            return

        def _flag(signum, frame):  # noqa: ARG001 - signal handler signature
            self._interrupt_signum = signum

        previous = {
            sig: signal_module.signal(sig, _flag)
            for sig in (signal_module.SIGINT, signal_module.SIGTERM)
        }
        try:
            yield
        finally:
            for sig, handler in previous.items():
                signal_module.signal(sig, handler)

    def _check_interrupt(self, epoch: int, steps_done: int, accum: dict) -> None:
        if self._interrupt_signum is None:
            return
        signum = self._interrupt_signum
        self._interrupt_signum = None
        self.telemetry.run_marker(
            "interrupt", signum=signum, epoch=epoch, steps_done=steps_done
        )
        path = self._snapshot("interrupt", epoch, steps_done, accum)
        raise TrainingInterrupted(
            f"received signal {signum} at epoch {epoch} after {steps_done} steps; "
            + (f"snapshot written to {path}" if path else "no snapshot directory configured"),
            snapshot_path=path,
        )

    # ------------------------------------------------------------------
    # Divergence recovery (same contract as Trainer)
    # ------------------------------------------------------------------
    def _attempt_recovery(self, exc: TrainingDiverged) -> tuple[dict, dict] | None:
        if self._store is None or self.resilience is None:
            return None
        if self._retries_used >= self.resilience.max_retries:
            return None
        latest = self._store.latest_valid()
        if latest is None:
            return None
        _, meta = latest
        old_lr = float(self.schedule.base_lr)
        new_lr = old_lr * self.resilience.backoff_factor
        event = RecoveryEvent(
            epoch=exc.epoch if exc.epoch is not None else -1,
            batch=exc.batches_done if exc.batches_done is not None else -1,
            reason=str(exc),
            restored_step=int(meta["step"]),
            old_lr=old_lr,
            new_lr=new_lr,
            cause=getattr(exc, "cause", ""),
        )
        self.telemetry.run_marker(
            "recovery",
            cause=event.cause,
            restored_step=event.restored_step,
            old_lr=old_lr,
            new_lr=new_lr,
        )
        self._recovery_events.append(event)
        self._retries_used += 1
        self._pending_backoff = new_lr / float(meta["schedule"]["base_lr"])
        return latest

    # ------------------------------------------------------------------
    # Training loop
    # ------------------------------------------------------------------
    def train(self, resume_from: str | os.PathLike | None = None) -> TrainingHistory:
        """Run the full schedule over the pool; returns the history.

        ``resume_from`` restarts bit-exactly from the latest valid elastic
        snapshot in that directory (the global order and RNG streams are
        stateless functions of the run seed, so a resumed run replays the
        identical trajectory).
        """
        resume_state: tuple[dict, dict] | None = None
        if resume_from is not None:
            store = SnapshotStore(
                resume_from,
                keep_last=self.resilience.keep_last if self.resilience else 3,
            )
            if self._store is None:
                self._store = store
            resume_state = store.latest_valid()

        with self._signal_guard():
            try:
                self._spawn_pool()
                while True:
                    try:
                        return self._run(resume_state)
                    except TrainingDiverged as exc:
                        recovered = (
                            self._attempt_recovery(exc)
                            if getattr(exc, "allow_recovery", True)
                            else None
                        )
                        if recovered is None:
                            exc.recovery_log = list(self._recovery_events)
                            self.history.events = list(self._recovery_events)
                            raise
                        resume_state = recovered
            finally:
                self.shutdown()

    def _run(self, resume_state: tuple[dict, dict] | None) -> TrainingHistory:
        config = self.config
        telemetry = self.telemetry
        start_epoch, start_step = 1, 0

        if resume_state is not None:
            start_epoch, start_step = self._restore_state(*resume_state)
        else:
            self.history = TrainingHistory()
            self.history.events = list(self._recovery_events)
            self.best_state = None
            self._step = 0
            self._best_dev = float("inf")
            self._epochs_without_improvement = 0
            telemetry.run_marker(
                "elastic_start",
                epochs=config.epochs,
                workers=self.elastic.workers,
                microbatches_per_step=self.microbatches_per_step,
                lr=float(self.schedule.base_lr),
            )
        telemetry.set_step(self._step)

        if self._pending_backoff is not None:
            self.schedule.base_lr *= self._pending_backoff
            self._pending_backoff = None

        if start_epoch > config.epochs:
            if self.best_state is not None:
                self.model.load_state_dict(self.best_state)
            return self.history

        if resume_state is None and self._store is not None:
            self._snapshot("epoch_start", 1, 0)

        snapshot_every = self.resilience.every_n_batches if self.resilience else 0
        lengths = example_source_lengths(self.examples)
        group = self.microbatches_per_step

        for epoch in range(start_epoch, config.epochs + 1):
            lr = self.schedule.apply(epoch)
            self._params_version += 1  # schedule may have changed nothing, but
            # the epoch boundary is a natural re-broadcast point for restarts
            plan = epoch_batch_plan(
                lengths, self.batch_size, self.run_seed, epoch,
                bucket_multiplier=self.bucket_multiplier,
            )
            steps = [
                list(enumerate(plan))[start: start + group]
                for start in range(0, len(plan), group)
            ]
            resuming_mid_epoch = epoch == start_epoch and start_step > 0
            accum = (
                (self._resume_accum or _zero_accum())
                if resuming_mid_epoch
                else _zero_accum()
            )
            self._resume_accum = None
            epoch_start = time.perf_counter()
            skip = start_step if epoch == start_epoch else 0

            with telemetry.span("epoch", extra={"epoch": epoch}):
                for step_in_epoch, slot_items in enumerate(steps):
                    if step_in_epoch < skip:
                        continue
                    step_start = time.perf_counter()
                    telemetry.set_step(self._step + 1)
                    try:
                        results = self._execute_step(epoch, slot_items)
                    except TrainingDiverged as exc:
                        exc.epoch = epoch
                        exc.batches_done = step_in_epoch
                        raise
                    self._apply_step(results, accum, epoch, step_in_epoch)
                    self._step += 1
                    step_wall = time.perf_counter() - step_start
                    busy = sum(r[3] for r in results.values())
                    world = max(1, len(self._live_handles())) if self.elastic.workers else 1
                    now = time.monotonic()
                    emit_worker_pool(
                        telemetry,
                        "elastic",
                        {
                            h.rank: now - h.last_heartbeat
                            for h in self._live_handles()
                        },
                        world_size=len(self._live_handles()),
                        efficiency=scaling_efficiency(busy, step_wall, world),
                        rss_bytes=self.worker_rss,
                    )
                    telemetry.observe("elastic.step_seconds", step_wall)
                    self._check_interrupt(epoch, step_in_epoch + 1, accum)
                    if snapshot_every and self._step % snapshot_every == 0:
                        self._snapshot("mid_epoch", epoch, step_in_epoch + 1, accum)

                dev_loss = (
                    evaluate_mean_loss(self.model, self.dev_iterator)
                    if self.dev_iterator is not None
                    else None
                )

            record = EpochRecord(
                epoch=epoch,
                train_loss=accum["loss"] / max(1, accum["tokens"]),
                learning_rate=lr,
                grad_norm=accum["norm"] / max(1, accum["batches"]),
                dev_loss=dev_loss,
            )
            self.history.append(record)
            telemetry.gauge("train.lr", lr)
            telemetry.gauge("train.epoch_loss", record.train_loss)
            if dev_loss is not None:
                telemetry.gauge("train.dev_loss", dev_loss)
            telemetry.gauge("train.param_norm", param_norm(self.optimizer.parameters))
            telemetry.throughput(
                "train.tokens", accum["tokens"], time.perf_counter() - epoch_start
            )
            telemetry.flush_histograms()
            if self.epoch_callback:
                self.epoch_callback(record)

            stop = False
            if dev_loss is not None:
                if dev_loss < self._best_dev - 1e-6:
                    self._best_dev = dev_loss
                    self.best_state = self.model.state_dict()
                    self._epochs_without_improvement = 0
                else:
                    self._epochs_without_improvement += 1
                    patience = config.early_stopping_patience
                    if patience is not None and self._epochs_without_improvement >= patience:
                        stop = True

            epoch_end_path = self._snapshot("epoch_end", epoch, 0)
            if self._interrupt_signum is not None:
                signum = self._interrupt_signum
                self._interrupt_signum = None
                raise TrainingInterrupted(
                    f"received signal {signum} after epoch {epoch}; "
                    + (
                        f"snapshot written to {epoch_end_path}"
                        if epoch_end_path
                        else "no snapshot directory configured"
                    ),
                    snapshot_path=epoch_end_path,
                )
            if stop:
                break

        if self.best_state is not None:
            self.model.load_state_dict(self.best_state)
        telemetry.run_marker(
            "elastic_finish",
            step=self._step,
            epochs_run=len(self.history.records),
            worker_deaths=self.worker_deaths,
            worker_restarts=self.worker_restarts,
            degraded=self._degraded,
        )
        telemetry.flush()
        return self.history

    def _apply_step(
        self, results: dict[int, tuple], accum: dict, epoch: int, step_in_epoch: int
    ) -> None:
        """Reduce one step's contributions in pinned order and step."""
        ordered = sorted(results.items())  # pinned: ascending micro-batch slot
        contributions = [grads for _, (grads, *_rest) in ordered]
        reduced = tree_reduce_gradients(contributions)
        scale = 1.0 / len(contributions)  # numerics: ok — results is never empty
        parameters = self.optimizer.parameters
        for param, grad in zip(parameters, reduced):
            param.grad = grad * scale
        try:
            norm = clip_grad_norm(parameters, self.config.clip_norm, on_nonfinite="raise")
        except NonFiniteGradError as exc:
            diverged = TrainingDiverged(
                f"non-finite reduced gradient norm at step {self._step + 1} ({exc})",
                cause="nonfinite_grad_norm",
            )
            diverged.epoch = epoch
            diverged.batches_done = step_in_epoch
            raise diverged from exc
        self.optimizer.step()
        self.model.zero_grad()
        self._params_version += 1
        # Sum in slot order, not results' insertion (= arrival) order: float
        # addition is not associative, so an arrival-ordered sum would make
        # the reported train loss drift across world sizes.
        loss_sum = sum(value[1] for _, value in ordered)
        tokens = sum(value[2] for _, value in ordered)
        accum["loss"] += loss_sum
        accum["tokens"] += tokens
        accum["norm"] += norm
        accum["batches"] += 1
        mean_loss = loss_sum / max(1, tokens)
        self.telemetry.gauge("train.loss", mean_loss)
        self.telemetry.gauge("train.grad_norm", norm)
        self.telemetry.counter("train.tokens", tokens)
