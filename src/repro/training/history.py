"""Training history tracking."""

from __future__ import annotations

import json
import math
import os
from dataclasses import asdict, dataclass, field

__all__ = ["EpochRecord", "RecoveryEvent", "TrainingHistory"]


@dataclass(frozen=True)
class RecoveryEvent:
    """One divergence-recovery action taken by the fault-tolerant trainer."""

    epoch: int
    """Epoch in progress when the divergence was detected (1-based)."""
    batch: int
    """Batches completed in that epoch before the divergence."""
    reason: str
    """The :class:`TrainingDiverged` message that triggered the rollback."""
    restored_step: int
    """Global batch counter of the snapshot rolled back to (-1 = none)."""
    old_lr: float
    new_lr: float
    cause: str = ""
    """Machine-readable divergence cause (e.g. ``nonfinite_loss``,
    ``nonfinite_grad_norm``) recorded by the health sentinel that fired
    before the rollback; empty on payloads from before the telemetry layer."""


@dataclass(frozen=True)
class EpochRecord:
    """Summary of one training epoch."""

    epoch: int
    train_loss: float
    learning_rate: float
    grad_norm: float
    """Mean pre-clipping gradient norm across the epoch's batches."""
    dev_loss: float | None = None

    @property
    def train_perplexity(self) -> float:
        return math.exp(min(self.train_loss, 50.0))

    @property
    def dev_perplexity(self) -> float | None:
        if self.dev_loss is None:
            return None
        return math.exp(min(self.dev_loss, 50.0))


@dataclass
class TrainingHistory:
    """Ordered epoch records plus convenience accessors.

    ``events`` records divergence-recovery actions (rollback + lr backoff);
    an uneventful run leaves it empty.
    """

    records: list[EpochRecord] = field(default_factory=list)
    events: list[RecoveryEvent] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        if self.records and record.epoch <= self.records[-1].epoch:
            raise ValueError(
                f"epoch {record.epoch} not after last recorded {self.records[-1].epoch}"
            )
        self.records.append(record)

    def record_event(self, event: RecoveryEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def final_train_loss(self) -> float:
        if not self.records:
            raise ValueError("history is empty")
        return self.records[-1].train_loss

    @property
    def best_dev_loss(self) -> float | None:
        losses = [r.dev_loss for r in self.records if r.dev_loss is not None]
        return min(losses) if losses else None

    @property
    def best_dev_epoch(self) -> int | None:
        best: tuple[float, int] | None = None
        for record in self.records:
            if record.dev_loss is not None and (best is None or record.dev_loss < best[0]):
                best = (record.dev_loss, record.epoch)
        return best[1] if best else None

    def to_payload(self) -> dict:
        """JSON-able representation (records plus recovery events)."""
        return {
            "records": [asdict(record) for record in self.records],
            "events": [asdict(event) for event in self.events],
        }

    @classmethod
    def from_payload(cls, payload) -> "TrainingHistory":
        """Inverse of :meth:`to_payload`; also accepts the legacy list form."""
        history = cls()
        if isinstance(payload, list):  # pre-events format: a bare record list
            rows, events = payload, []
        else:
            rows = payload.get("records", [])
            events = payload.get("events", [])
        for row in rows:
            history.append(EpochRecord(**row))
        for event in events:
            history.record_event(RecoveryEvent(**event))
        return history

    def save(self, path: str | os.PathLike) -> None:
        """Write the history to JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_payload(), handle, indent=2)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "TrainingHistory":
        with open(path, encoding="utf-8") as handle:
            return cls.from_payload(json.load(handle))
