"""Training history tracking."""

from __future__ import annotations

import json
import math
import os
from dataclasses import asdict, dataclass, field

__all__ = ["EpochRecord", "TrainingHistory"]


@dataclass(frozen=True)
class EpochRecord:
    """Summary of one training epoch."""

    epoch: int
    train_loss: float
    learning_rate: float
    grad_norm: float
    """Mean pre-clipping gradient norm across the epoch's batches."""
    dev_loss: float | None = None

    @property
    def train_perplexity(self) -> float:
        return math.exp(min(self.train_loss, 50.0))

    @property
    def dev_perplexity(self) -> float | None:
        if self.dev_loss is None:
            return None
        return math.exp(min(self.dev_loss, 50.0))


@dataclass
class TrainingHistory:
    """Ordered epoch records plus convenience accessors."""

    records: list[EpochRecord] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        if self.records and record.epoch <= self.records[-1].epoch:
            raise ValueError(
                f"epoch {record.epoch} not after last recorded {self.records[-1].epoch}"
            )
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def final_train_loss(self) -> float:
        if not self.records:
            raise ValueError("history is empty")
        return self.records[-1].train_loss

    @property
    def best_dev_loss(self) -> float | None:
        losses = [r.dev_loss for r in self.records if r.dev_loss is not None]
        return min(losses) if losses else None

    @property
    def best_dev_epoch(self) -> int | None:
        best: tuple[float, int] | None = None
        for record in self.records:
            if record.dev_loss is not None and (best is None or record.dev_loss < best[0]):
                best = (record.dev_loss, record.epoch)
        return best[1] if best else None

    def save(self, path: str | os.PathLike) -> None:
        """Write the history to JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump([asdict(record) for record in self.records], handle, indent=2)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "TrainingHistory":
        with open(path, encoding="utf-8") as handle:
            rows = json.load(handle)
        history = cls()
        for row in rows:
            history.append(EpochRecord(**row))
        return history
