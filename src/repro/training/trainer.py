"""The training loop.

Reproduces the paper's optimization recipe: SGD with initial learning rate
1.0 halved at epoch 8, mini-batches (paper: 64), gradient clipping (OpenNMT
default 5.0), dropout 0.3 inside the models, teacher forcing throughout.

With a :class:`~repro.training.resilience.ResilienceConfig`, the loop is
fault tolerant: it snapshots the *full* run state (parameters, optimizer,
schedule, RNG streams, cursors, best-dev tracking, history) every epoch and
optionally every N batches, resumes bit-exactly from the latest valid
snapshot via ``train(resume_from=...)``, and on divergence rolls back to
the last good snapshot with a halved learning rate instead of dying —
until a bounded retry budget is exhausted.
"""

from __future__ import annotations

import math
import os
import signal as signal_module
import threading
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import Callable

from repro.data.batching import Batch, BatchIterator
from repro.models.base import QuestionGenerator
from repro.nn.embedding import Embedding
from repro.observability import (
    Telemetry,
    TerminalSink,
    emit_gate_statistics,
    get_telemetry,
    nonfinite_sentinel,
    param_norm,
)
from repro.optim import SGD, HalveAtEpoch, NonFiniteGradError, clip_grad_norm
from repro.optim.optimizers import Optimizer
from repro.optim.schedules import Schedule
from repro.tensor.anomaly import NumericalAnomaly, detect_anomaly
from repro.tensor.core import no_grad
from repro.tensor.lazy import fusion_context
from repro.training.history import EpochRecord, RecoveryEvent, TrainingHistory
from repro.training.overflow import BatchQuarantined, DynamicLossScaler, OverflowPolicy
from repro.training.resilience import (
    ResilienceConfig,
    SnapshotStore,
    capture_module_rng_states,
    capture_rng_state,
    restore_module_rng_states,
    restore_rng_state,
)

__all__ = [
    "TrainerConfig",
    "Trainer",
    "TrainingDiverged",
    "TrainingInterrupted",
    "EmptyEvaluationError",
    "evaluate_mean_loss",
]


class TrainingDiverged(RuntimeError):
    """Raised when the loss or gradients become non-finite.

    SGD at the paper's lr=1.0 can blow up on unlucky seeds/corpora; failing
    loudly with context beats silently optimizing NaNs for ten epochs.
    When divergence recovery was attempted first, :attr:`recovery_log`
    holds the :class:`~repro.training.history.RecoveryEvent` list.
    """

    def __init__(self, message: str, cause: str = "nonfinite") -> None:
        super().__init__(message)
        self.recovery_log: list[RecoveryEvent] = []
        self.epoch: int | None = None
        self.batches_done: int | None = None
        self.cause = cause
        """Machine-readable divergence cause, copied into the
        :class:`~repro.training.history.RecoveryEvent` on rollback."""
        self.allow_recovery = True
        """False under ``overflow_policy="raise"``: the user asked for a
        hard failure, so snapshot rollback must not swallow it."""


class TrainingInterrupted(RuntimeError):
    """SIGINT/SIGTERM arrived; a final graceful snapshot was written first."""

    def __init__(self, message: str, snapshot_path: str | None = None) -> None:
        super().__init__(message)
        self.snapshot_path = snapshot_path


class EmptyEvaluationError(RuntimeError):
    """An evaluation iterator yielded no target tokens.

    Typed (rather than a bare ``ValueError``) so the epoch loop can surface
    it with run context instead of killing a multi-hour run with an opaque
    traceback.
    """


def evaluate_mean_loss(model: QuestionGenerator, iterator: BatchIterator) -> float:
    """Token-weighted mean loss over an iterator (no dropout, no graph).

    Shared by :class:`Trainer` and the elastic coordinator
    (:mod:`repro.training.elastic`), so both runtimes report dev loss from
    the identical code path.
    """
    model.eval()
    total_loss = 0.0
    total_tokens = 0
    with no_grad():
        for batch in iterator:
            tokens = batch.num_target_tokens
            total_loss += model.loss(batch).item() * tokens
            total_tokens += tokens
    if total_tokens == 0:
        raise EmptyEvaluationError("evaluation iterator produced no target tokens")
    return total_loss / total_tokens  # numerics: ok — total_tokens == 0 raises above


@dataclass(frozen=True)
class TrainerConfig:
    """Optimization hyperparameters (paper defaults)."""

    epochs: int = 12
    learning_rate: float = 1.0
    halve_at_epoch: int = 8
    clip_norm: float = 5.0
    early_stopping_patience: int | None = None
    """Stop after this many epochs without dev-loss improvement (None = off)."""
    log_every: int = 0
    """Print a progress line every N batches (0 = silent)."""
    detect_anomaly: bool = False
    """Run forward/backward inside :func:`repro.tensor.detect_anomaly`:
    the first non-finite op output or gradient raises with the full causal
    chain (op name, shapes, creation site). Adds per-op bookkeeping cost —
    meant for debugging a diverging run, not the default loop."""
    overflow_policy: str = OverflowPolicy.ROLLBACK
    """What a non-finite loss/gradient does to the run: ``"skip"``
    quarantines the batch and continues, ``"rollback"`` (default, the
    historical behavior) raises :class:`TrainingDiverged` so the
    resilience layer can restore a snapshot, ``"raise"`` raises without
    attempting recovery even when resilience is configured."""
    overflow_max_consecutive: int = 5
    """Under ``"skip"``: escalate to :class:`TrainingDiverged` after this
    many consecutive quarantined batches — a model that cannot produce a
    finite step anymore has diverged."""
    fusion: bool = False
    """Run the forward pass inside :func:`repro.tensor.lazy.fusion_context`:
    each decoder step's LSTM/attention/copy chains collapse into single
    fused tape nodes (byte-identical forward, gradcheck-pinned backward)
    instead of ~30 elementary ops. Off by default — zero behavior change;
    ``False`` still defers to the process-wide
    :func:`~repro.tensor.lazy.set_fusion_enabled` default, so the CLI's
    ``--fusion`` flag reaches the loop without threading config."""

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.clip_norm <= 0:
            raise ValueError(f"clip_norm must be positive, got {self.clip_norm}")
        OverflowPolicy.validate(self.overflow_policy)
        if self.overflow_max_consecutive < 1:
            raise ValueError(
                f"overflow_max_consecutive must be >= 1, got {self.overflow_max_consecutive}"
            )


class Trainer:
    """Drives teacher-forced training of any :class:`QuestionGenerator`.

    Parameters
    ----------
    model:
        The model to train.
    train_iterator:
        Yields training batches each epoch (reshuffled internally).
    dev_iterator:
        Optional; enables per-epoch dev loss, early stopping, and
        best-checkpoint tracking.
    config:
        Optimization settings.
    optimizer, schedule:
        Injectable for ablations; default to the paper's SGD + halve-at-8.
    epoch_callback:
        Optional hook called with each :class:`EpochRecord` (used by the
        experiment harness for logging).
    resilience:
        Optional fault-tolerance settings; enables snapshotting, crash-safe
        resume, and divergence recovery (see
        :mod:`repro.training.resilience`).
    telemetry:
        Event hub for structured run telemetry (loss/grad-norm gauges,
        spans, health sentinels). Defaults to the ambient hub installed by
        :func:`repro.observability.use_telemetry`; when none is installed,
        a terminal-only hub keeps ``log_every`` progress lines visible.
        Snapshots record the telemetry cursor, so a resumed run appends to
        the same trace with no gaps or duplicates.
    """

    def __init__(
        self,
        model: QuestionGenerator,
        train_iterator: BatchIterator,
        dev_iterator: BatchIterator | None = None,
        config: TrainerConfig | None = None,
        optimizer: Optimizer | None = None,
        schedule: Schedule | None = None,
        epoch_callback: Callable[[EpochRecord], None] | None = None,
        resilience: ResilienceConfig | None = None,
        telemetry: Telemetry | None = None,
        loss_scaler: DynamicLossScaler | None = None,
    ) -> None:
        self.model = model
        self.train_iterator = train_iterator
        self.dev_iterator = dev_iterator
        self.config = config or TrainerConfig()
        if telemetry is None:
            telemetry = get_telemetry()
            if not telemetry.enabled:
                # Keep human progress lines working with zero configuration:
                # log events route to the terminal, nothing is persisted.
                telemetry = Telemetry([TerminalSink()])
        self.telemetry = telemetry
        self.optimizer = optimizer or SGD(model.parameters(), lr=self.config.learning_rate)
        self.schedule = schedule or HalveAtEpoch(self.optimizer, self.config.halve_at_epoch)
        self.epoch_callback = epoch_callback
        self.resilience = resilience
        if loss_scaler is None and self.config.overflow_policy == OverflowPolicy.SKIP:
            # Inert by default (scale 1.0, growth off): supplies the
            # quarantine bookkeeping without perturbing the arithmetic.
            loss_scaler = DynamicLossScaler()
        self.loss_scaler = loss_scaler
        self.overflow_skipped = 0
        """Total batches quarantined under ``overflow_policy="skip"``."""
        self.history = TrainingHistory()
        self.best_state: dict | None = None
        self._embeddings = [m for m in model.modules() if isinstance(m, Embedding)]
        self._store = (
            SnapshotStore(resilience.directory, keep_last=resilience.keep_last)
            if resilience
            else None
        )
        # Run cursors / resumable scalar state.
        self._step = 0
        self._best_dev = float("inf")
        self._epochs_without_improvement = 0
        self._retries_used = 0
        self._recovery_events: list[RecoveryEvent] = []
        self._pending_backoff: float | None = None
        self._finished = False
        self._interrupt_signum: int | None = None
        self._epoch_start_iter_state: dict | None = None
        self._resume_accum: dict | None = None

    # ------------------------------------------------------------------
    def _overflow_failure(
        self, cause: str, message: str, value: float | None = None
    ) -> ArithmeticError | RuntimeError:
        """Build the exception the configured overflow policy calls for."""
        if self.config.overflow_policy == OverflowPolicy.SKIP:
            return BatchQuarantined(message, cause=cause, step=self._step + 1, value=value)
        exc = TrainingDiverged(message, cause=cause)
        exc.allow_recovery = self.config.overflow_policy != OverflowPolicy.RAISE
        return exc

    def train_batch(self, batch: Batch) -> tuple[float, float]:
        """One optimization step; returns (loss, pre-clip gradient norm).

        Raises
        ------
        BatchQuarantined
            Under ``overflow_policy="skip"``, if the loss or gradients are
            NaN/inf (or an anomaly fires): the batch is dropped, nothing
            was applied to the parameters.
        TrainingDiverged
            Under the other policies, for the same conditions.
        """
        telemetry = self.telemetry
        self.model.train()
        scaler = self.loss_scaler
        anomaly_guard = detect_anomaly() if self.config.detect_anomaly else nullcontext()
        fusion_guard = fusion_context(True) if self.config.fusion else nullcontext()
        try:
            with anomaly_guard, fusion_guard:
                with telemetry.span("forward"):
                    loss = self.model.loss(batch)
                loss_value = loss.item()
                # The sentinel fires *before* the raise, so the trace records
                # the failure (and the resilience rollback can carry its
                # cause) even when recovery later rewrites the run's tail.
                if not nonfinite_sentinel(
                    telemetry, "loss", loss_value, lr=self.optimizer.lr, batch=batch.size
                ):
                    raise self._overflow_failure(
                        "nonfinite_loss",
                        f"non-finite training loss {loss_value} "
                        f"(lr={self.optimizer.lr:g}, batch of {batch.size})",
                        value=loss_value,
                    )
                with telemetry.span("backward"):
                    if scaler is not None and scaler.active:
                        (loss * scaler.scale).backward()
                    else:
                        loss.backward()
        except NumericalAnomaly as exc:
            # detect_anomaly already emitted anomaly.* telemetry; here the
            # culprit op becomes the typed cause so a rollback's
            # RecoveryEvent (or the quarantine marker) names it.
            raise self._overflow_failure(
                f"anomaly:{exc.op}",
                f"numerical anomaly ({exc.kind} in {exc.phase} of op '{exc.op}'): {exc}",
            ) from exc
        for embedding in self._embeddings:
            embedding.zero_padding_grad()
        if scaler is not None and scaler.active:
            unscale = 1.0 / scaler.scale  # numerics: ok — scaler.scale > 0 invariant
            for param in self.optimizer.parameters:
                if param.grad is not None:
                    param.grad *= unscale
        try:
            norm = clip_grad_norm(
                self.optimizer.parameters, self.config.clip_norm, on_nonfinite="raise"
            )
        except NonFiniteGradError as exc:
            nonfinite_sentinel(telemetry, "grad_norm", exc.norm, lr=self.optimizer.lr)
            raise self._overflow_failure(
                "nonfinite_grad_norm",
                f"non-finite gradient norm (lr={self.optimizer.lr:g}, {exc}); "
                "consider a lower learning rate or tighter clip_norm",
                value=exc.norm,
            ) from exc
        with telemetry.span("optimizer_step"):
            self.optimizer.step()
        self.model.zero_grad()
        if scaler is not None:
            scaler.on_good_step()
        return loss_value, norm

    def evaluate_loss(self, iterator: BatchIterator) -> float:
        """Token-weighted mean dev loss (no dropout, no graph)."""
        return evaluate_mean_loss(self.model, iterator)

    # ------------------------------------------------------------------
    # Run-state capture / restore
    # ------------------------------------------------------------------
    def _capture_state(self, phase: str, epoch: int, batch_cursor: int, accum: dict) -> tuple[dict, dict]:
        """Pack the complete run state into (arrays, meta) for a snapshot."""
        optimizer_state = self.optimizer.state_dict()
        arrays = {f"model::{k}": v for k, v in self.model.state_dict().items()}
        arrays.update({f"opt::{k}": v for k, v in optimizer_state["arrays"].items()})
        if self.best_state is not None:
            arrays.update({f"best::{k}": v for k, v in self.best_state.items()})
        iterator_rng = getattr(self.train_iterator, "_rng", None)
        meta = {
            "phase": phase,
            "epoch": epoch,
            "batch_cursor": batch_cursor,
            "accum": accum,
            "best_dev": None if math.isinf(self._best_dev) else self._best_dev,
            "epochs_without_improvement": self._epochs_without_improvement,
            "retries_used": self._retries_used,
            "finished": self._finished,
            "overflow_skipped": self.overflow_skipped,
            "loss_scaler": self.loss_scaler.state_dict() if self.loss_scaler else None,
            "has_best": self.best_state is not None,
            "optimizer": optimizer_state["scalars"],
            "schedule": self.schedule.state_dict(),
            "history": self.history.to_payload(),
            "rng": {
                "iterator": capture_rng_state(iterator_rng) if iterator_rng is not None else None,
                "epoch_start_iterator": self._epoch_start_iter_state,
                "model": capture_module_rng_states(self.model),
            },
            # Where the telemetry stream stood when this snapshot was taken
            # (cursor + open histogram windows): a resume rewinds the trace
            # to this point, so replayed batches overwrite the dead tail
            # instead of duplicating it.
            "telemetry": self.telemetry.state(),
        }
        return arrays, meta

    def _restore_state(self, arrays: dict, meta: dict) -> tuple[int, int]:
        """Restore a snapshot; returns (start_epoch, resume_cursor)."""
        model_state = {
            k.split("::", 1)[1]: v for k, v in arrays.items() if k.startswith("model::")
        }
        opt_arrays = {k.split("::", 1)[1]: v for k, v in arrays.items() if k.startswith("opt::")}
        best_state = {k.split("::", 1)[1]: v for k, v in arrays.items() if k.startswith("best::")}
        self.model.load_state_dict(model_state)
        self.optimizer.load_state_dict({"scalars": meta["optimizer"], "arrays": opt_arrays})
        self.schedule.load_state_dict(meta["schedule"])
        self.best_state = {k: v.copy() for k, v in best_state.items()} if meta["has_best"] else None
        self.history = TrainingHistory.from_payload(meta["history"])
        if len(self.history.events) > len(self._recovery_events):
            self._recovery_events = list(self.history.events)
        self.history.events = list(self._recovery_events)
        self._best_dev = float("inf") if meta["best_dev"] is None else float(meta["best_dev"])
        self._epochs_without_improvement = int(meta["epochs_without_improvement"])
        self._retries_used = max(self._retries_used, int(meta["retries_used"]))
        self._finished = bool(meta.get("finished", False))
        self.overflow_skipped = int(meta.get("overflow_skipped", 0))
        scaler_state = meta.get("loss_scaler")
        if scaler_state and self.loss_scaler is not None:
            self.loss_scaler.load_state_dict(scaler_state)
        self._step = int(meta["step"])

        telemetry_state = meta.get("telemetry")
        if telemetry_state and telemetry_state.get("cursor") is not None:
            self.telemetry.restore(telemetry_state)
        self.telemetry.run_marker(
            "resume", step=int(meta["step"]), epoch=int(meta["epoch"]), phase=str(meta["phase"])
        )

        rng = meta["rng"]
        restore_module_rng_states(self.model, rng["model"])
        iterator_rng = getattr(self.train_iterator, "_rng", None)
        epoch, cursor = int(meta["epoch"]), int(meta["batch_cursor"])
        mid_epoch = meta["phase"] in ("mid_epoch", "interrupt") and cursor > 0
        if iterator_rng is not None:
            # Mid-epoch: rewind the shuffle RNG to the epoch start so the
            # replayed epoch reproduces the identical batch order; otherwise
            # continue the stream from where the snapshot left it.
            target = rng["epoch_start_iterator"] if mid_epoch else rng["iterator"]
            if target is not None:
                restore_rng_state(iterator_rng, target)
        self._epoch_start_iter_state = rng["epoch_start_iterator"]
        self._resume_accum = dict(meta["accum"]) if mid_epoch else None
        if meta["phase"] == "epoch_end":
            return epoch + 1, 0
        return epoch, cursor if mid_epoch else 0

    def _snapshot(self, phase: str, epoch: int, batch_cursor: int, accum: dict) -> str | None:
        if self._store is None:
            return None
        arrays, meta = self._capture_state(phase, epoch, batch_cursor, accum)
        return self._store.save(self._step, arrays, meta)

    def _snapshot_best(self, epoch: int, dev_loss: float) -> None:
        """Pin the best-dev parameters outside the rotation window."""
        if self._store is None or self.best_state is None:
            return
        arrays = {f"model::{k}": v for k, v in self.best_state.items()}
        self._store.save_pinned(
            "best", arrays, {"epoch": epoch, "dev_loss": dev_loss, "step": self._step}
        )

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    @contextmanager
    def _signal_guard(self):
        """Route SIGINT/SIGTERM to a graceful-snapshot flag while training."""
        if (
            self.resilience is None
            or not self.resilience.handle_signals
            or threading.current_thread() is not threading.main_thread()
        ):
            yield
            return

        def _flag(signum, frame):  # noqa: ARG001 - signal handler signature
            self._interrupt_signum = signum

        previous = {
            sig: signal_module.signal(sig, _flag)
            for sig in (signal_module.SIGINT, signal_module.SIGTERM)
        }
        try:
            yield
        finally:
            for sig, handler in previous.items():
                signal_module.signal(sig, handler)

    def _check_interrupt(self, epoch: int, batch_cursor: int, accum: dict) -> None:
        if self._interrupt_signum is None:
            return
        signum = self._interrupt_signum
        self._interrupt_signum = None
        self.telemetry.run_marker("interrupt", signum=signum, epoch=epoch, batch=batch_cursor)
        path = self._snapshot("interrupt", epoch, batch_cursor, accum)
        raise TrainingInterrupted(
            f"received signal {signum} at epoch {epoch} after {batch_cursor} batches; "
            + (f"snapshot written to {path}" if path else "no snapshot directory configured"),
            snapshot_path=path,
        )

    # ------------------------------------------------------------------
    # Overflow quarantine (overflow_policy="skip")
    # ------------------------------------------------------------------
    def _quarantine_batch(self, exc: BatchQuarantined, epoch: int, batch_index: int) -> None:
        """Drop a non-finite batch: zero its gradients, count it, escalate
        to :class:`TrainingDiverged` after too many in a row."""
        self.model.zero_grad()
        self.overflow_skipped += 1
        scaler = self.loss_scaler
        consecutive = self.overflow_skipped
        scale = 1.0
        if scaler is not None:
            scale = scaler.on_overflow()
            consecutive = scaler.consecutive_overflows
        self.telemetry.counter("train.overflow.skipped")
        self.telemetry.run_marker(
            "overflow_quarantine",
            cause=exc.cause,
            epoch=epoch,
            batch=batch_index,
            skipped_total=self.overflow_skipped,
            consecutive=consecutive,
            scale=scale,
        )
        self.telemetry.log(
            f"[overflow] quarantined batch {batch_index} of epoch {epoch} "
            f"({exc.cause}); {consecutive} consecutive, {self.overflow_skipped} total"
        )
        if consecutive >= self.config.overflow_max_consecutive:
            diverged = TrainingDiverged(
                f"{consecutive} consecutive batches quarantined "
                f"(last cause: {exc.cause}); escalating skip to divergence",
                cause=exc.cause,
            )
            diverged.epoch = epoch
            diverged.batches_done = batch_index - 1
            raise diverged from exc

    # ------------------------------------------------------------------
    # Divergence recovery
    # ------------------------------------------------------------------
    def _attempt_recovery(self, exc: TrainingDiverged) -> tuple[dict, dict] | None:
        """Roll back to the last good snapshot with a reduced lr, or None."""
        if self._store is None or self.resilience is None:
            return None
        if self._retries_used >= self.resilience.max_retries:
            return None
        latest = self._store.latest_valid()
        if latest is None:
            return None
        _, meta = latest
        # The lr actually in use when the run diverged, not the snapshot's:
        # repeated divergence without an intervening snapshot must keep
        # compounding the backoff (1.0 → 0.5 → 0.25 …), so the pending
        # factor is expressed relative to the lr the restore will bring back.
        old_lr = float(self.schedule.base_lr)
        new_lr = old_lr * self.resilience.backoff_factor
        event = RecoveryEvent(
            epoch=exc.epoch if exc.epoch is not None else -1,
            batch=exc.batches_done if exc.batches_done is not None else -1,
            reason=str(exc),
            restored_step=int(meta["step"]),
            old_lr=old_lr,
            new_lr=new_lr,
            cause=getattr(exc, "cause", ""),
        )
        self.telemetry.run_marker(
            "recovery",
            cause=event.cause,
            restored_step=event.restored_step,
            old_lr=old_lr,
            new_lr=new_lr,
        )
        self._recovery_events.append(event)
        self._retries_used += 1
        self._pending_backoff = new_lr / float(meta["schedule"]["base_lr"])
        return latest

    # ------------------------------------------------------------------
    def train(self, resume_from: str | os.PathLike | None = None) -> TrainingHistory:
        """Run the full schedule; returns (and stores) the history.

        If a dev iterator is present, the parameters of the best-dev epoch
        are kept in :attr:`best_state` and restored at the end, so the
        trained model is the early-stopped one.

        Parameters
        ----------
        resume_from:
            Snapshot directory of a previous run. Training restarts
            bit-exactly from the latest *valid* snapshot there (corrupted
            generations are skipped automatically); with no valid snapshot
            the run starts fresh.
        """
        resume_state: tuple[dict, dict] | None = None
        if resume_from is not None:
            store = SnapshotStore(
                resume_from,
                keep_last=self.resilience.keep_last if self.resilience else 3,
            )
            if self._store is None:
                self._store = store
            resume_state = store.latest_valid()

        with self._signal_guard():
            while True:
                try:
                    return self._run(resume_state)
                except TrainingDiverged as exc:
                    recovered = (
                        self._attempt_recovery(exc)
                        if getattr(exc, "allow_recovery", True)
                        else None
                    )
                    if recovered is None:
                        exc.recovery_log = list(self._recovery_events)
                        self.history.events = list(self._recovery_events)
                        raise
                    resume_state = recovered

    # ------------------------------------------------------------------
    def _run(self, resume_state: tuple[dict, dict] | None) -> TrainingHistory:
        config = self.config
        telemetry = self.telemetry
        start_epoch, resume_cursor = 1, 0
        self._epoch_start_iter_state = None
        self._resume_accum = None

        if resume_state is not None:
            start_epoch, resume_cursor = self._restore_state(*resume_state)
        else:
            self.history = TrainingHistory()
            self.history.events = list(self._recovery_events)
            self.best_state = None
            self._step = 0
            self._best_dev = float("inf")
            self._epochs_without_improvement = 0
            self._finished = False
            telemetry.run_marker(
                "train_start",
                epochs=config.epochs,
                lr=float(self.schedule.base_lr),
                batches_per_epoch=len(self.train_iterator),
            )
        telemetry.set_step(self._step)
        if hasattr(self.model, "collect_gate_stats"):
            # Switch-gate (Eq. 2/4) statistics are accumulated by the model
            # only when someone is listening.
            self.model.collect_gate_stats = telemetry.enabled

        if self._pending_backoff is not None:
            self.schedule.base_lr *= self._pending_backoff
            self._pending_backoff = None

        if self._finished or start_epoch > config.epochs:
            if self.best_state is not None:
                self.model.load_state_dict(self.best_state)
            return self.history

        snapshot_every = self.resilience.every_n_batches if self.resilience else 0

        if resume_state is None and self._store is not None:
            # Step-0 snapshot: gives first-epoch divergence a rollback target.
            iterator_rng = getattr(self.train_iterator, "_rng", None)
            self._epoch_start_iter_state = (
                capture_rng_state(iterator_rng) if iterator_rng is not None else None
            )
            self._snapshot("epoch_start", 1, 0, self._zero_accum())

        for epoch in range(start_epoch, config.epochs + 1):
            resuming_mid_epoch = epoch == start_epoch and resume_cursor > 0
            if resuming_mid_epoch:
                accum = self._resume_accum or self._zero_accum()
                skip = resume_cursor
            else:
                accum = self._zero_accum()
                skip = 0
                iterator_rng = getattr(self.train_iterator, "_rng", None)
                self._epoch_start_iter_state = (
                    capture_rng_state(iterator_rng) if iterator_rng is not None else None
                )
            self._resume_accum = None
            lr = self.schedule.apply(epoch)
            epoch_start = time.perf_counter()

            with telemetry.span("epoch", extra={"epoch": epoch}):
                batch_index = 0
                for batch in self.train_iterator:
                    batch_index += 1
                    if batch_index <= skip:
                        continue
                    batch_start = time.perf_counter()
                    telemetry.set_step(self._step + 1)
                    try:
                        loss, norm = self.train_batch(batch)
                    except BatchQuarantined as exc:
                        self._quarantine_batch(exc, epoch, batch_index)
                        continue
                    except TrainingDiverged as exc:
                        exc.epoch = epoch
                        exc.batches_done = batch_index - 1
                        raise
                    accum["loss"] += loss * batch.num_target_tokens
                    accum["tokens"] += batch.num_target_tokens
                    accum["norm"] += norm
                    accum["batches"] += 1
                    self._step += 1
                    telemetry.gauge("train.loss", loss)
                    telemetry.gauge("train.grad_norm", norm)
                    telemetry.counter("train.tokens", batch.num_target_tokens)
                    telemetry.observe(
                        "train.batch_seconds", time.perf_counter() - batch_start
                    )
                    emit_gate_statistics(
                        telemetry, "train.gate", getattr(self.model, "last_gate_stats", None)
                    )
                    if config.log_every and batch_index % config.log_every == 0:
                        telemetry.log(
                            f"epoch {epoch} batch {batch_index}/{len(self.train_iterator)} "
                            f"loss {loss:.4f} lr {lr:g}"
                        )
                    self._check_interrupt(epoch, batch_index, accum)
                    if snapshot_every and self._step % snapshot_every == 0:
                        self._snapshot("mid_epoch", epoch, batch_index, accum)

                try:
                    # `is not None`, not truthiness: an *empty* dev iterator
                    # must reach evaluate_loss and fail loudly, not silently
                    # skip.
                    if self.dev_iterator is not None:
                        with telemetry.span("evaluate"):
                            dev_loss = self.evaluate_loss(self.dev_iterator)
                    else:
                        dev_loss = None
                except EmptyEvaluationError as exc:
                    raise EmptyEvaluationError(
                        f"dev evaluation at epoch {epoch} produced no target tokens "
                        f"({len(self.dev_iterator)} batches in the dev iterator)"
                    ) from exc
            record = EpochRecord(
                epoch=epoch,
                train_loss=accum["loss"] / max(1, accum["tokens"]),
                learning_rate=lr,
                grad_norm=accum["norm"] / max(1, accum["batches"]),
                dev_loss=dev_loss,
            )
            self.history.append(record)
            telemetry.gauge("train.lr", lr)
            telemetry.gauge("train.epoch_loss", record.train_loss)
            if dev_loss is not None:
                telemetry.gauge("train.dev_loss", dev_loss)
            telemetry.gauge("train.param_norm", param_norm(self.optimizer.parameters))
            telemetry.throughput(
                "train.tokens", accum["tokens"], time.perf_counter() - epoch_start
            )
            telemetry.flush_histograms()
            if self.epoch_callback:
                self.epoch_callback(record)

            stop = False
            if dev_loss is not None:
                if dev_loss < self._best_dev - 1e-6:
                    self._best_dev = dev_loss
                    self.best_state = self.model.state_dict()
                    self._epochs_without_improvement = 0
                    self._snapshot_best(epoch, dev_loss)
                else:
                    self._epochs_without_improvement += 1
                    patience = config.early_stopping_patience
                    if patience is not None and self._epochs_without_improvement >= patience:
                        stop = True

            self._finished = stop or epoch == config.epochs
            epoch_end_path = self._snapshot("epoch_end", epoch, 0, self._zero_accum())
            if self._interrupt_signum is not None:
                # The epoch-end snapshot just written IS the graceful
                # snapshot; writing an "interrupt" one at the same step
                # would shadow it with a mid-epoch-looking cursor.
                signum = self._interrupt_signum
                self._interrupt_signum = None
                raise TrainingInterrupted(
                    f"received signal {signum} after epoch {epoch}; "
                    + (
                        f"snapshot written to {epoch_end_path}"
                        if epoch_end_path
                        else "no snapshot directory configured"
                    ),
                    snapshot_path=epoch_end_path,
                )
            if stop:
                break

        if self.best_state is not None:
            self.model.load_state_dict(self.best_state)
        telemetry.run_marker(
            "train_finish",
            step=self._step,
            epochs_run=len(self.history.records),
            recoveries=len(self._recovery_events),
        )
        telemetry.flush()
        return self.history

    @staticmethod
    def _zero_accum() -> dict:
        return {"loss": 0.0, "tokens": 0, "norm": 0.0, "batches": 0}
