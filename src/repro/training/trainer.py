"""The training loop.

Reproduces the paper's optimization recipe: SGD with initial learning rate
1.0 halved at epoch 8, mini-batches (paper: 64), gradient clipping (OpenNMT
default 5.0), dropout 0.3 inside the models, teacher forcing throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.data.batching import Batch, BatchIterator
from repro.models.base import QuestionGenerator
from repro.nn.embedding import Embedding
from repro.optim import SGD, HalveAtEpoch, clip_grad_norm
from repro.optim.optimizers import Optimizer
from repro.optim.schedules import Schedule
from repro.tensor.core import no_grad
from repro.training.history import EpochRecord, TrainingHistory

__all__ = ["TrainerConfig", "Trainer", "TrainingDiverged"]


class TrainingDiverged(RuntimeError):
    """Raised when the loss or gradients become non-finite.

    SGD at the paper's lr=1.0 can blow up on unlucky seeds/corpora; failing
    loudly with context beats silently optimizing NaNs for ten epochs.
    """


@dataclass(frozen=True)
class TrainerConfig:
    """Optimization hyperparameters (paper defaults)."""

    epochs: int = 12
    learning_rate: float = 1.0
    halve_at_epoch: int = 8
    clip_norm: float = 5.0
    early_stopping_patience: int | None = None
    """Stop after this many epochs without dev-loss improvement (None = off)."""
    log_every: int = 0
    """Print a progress line every N batches (0 = silent)."""

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.clip_norm <= 0:
            raise ValueError(f"clip_norm must be positive, got {self.clip_norm}")


class Trainer:
    """Drives teacher-forced training of any :class:`QuestionGenerator`.

    Parameters
    ----------
    model:
        The model to train.
    train_iterator:
        Yields training batches each epoch (reshuffled internally).
    dev_iterator:
        Optional; enables per-epoch dev loss, early stopping, and
        best-checkpoint tracking.
    config:
        Optimization settings.
    optimizer, schedule:
        Injectable for ablations; default to the paper's SGD + halve-at-8.
    epoch_callback:
        Optional hook called with each :class:`EpochRecord` (used by the
        experiment harness for logging).
    """

    def __init__(
        self,
        model: QuestionGenerator,
        train_iterator: BatchIterator,
        dev_iterator: BatchIterator | None = None,
        config: TrainerConfig | None = None,
        optimizer: Optimizer | None = None,
        schedule: Schedule | None = None,
        epoch_callback: Callable[[EpochRecord], None] | None = None,
    ) -> None:
        self.model = model
        self.train_iterator = train_iterator
        self.dev_iterator = dev_iterator
        self.config = config or TrainerConfig()
        self.optimizer = optimizer or SGD(model.parameters(), lr=self.config.learning_rate)
        self.schedule = schedule or HalveAtEpoch(self.optimizer, self.config.halve_at_epoch)
        self.epoch_callback = epoch_callback
        self.history = TrainingHistory()
        self.best_state: dict | None = None
        self._embeddings = [m for m in model.modules() if isinstance(m, Embedding)]

    # ------------------------------------------------------------------
    def train_batch(self, batch: Batch) -> tuple[float, float]:
        """One optimization step; returns (loss, pre-clip gradient norm).

        Raises
        ------
        TrainingDiverged
            If the loss or the gradient norm is NaN/inf.
        """
        import math

        self.model.train()
        loss = self.model.loss(batch)
        loss_value = loss.item()
        if not math.isfinite(loss_value):
            raise TrainingDiverged(
                f"non-finite training loss {loss_value} "
                f"(lr={self.optimizer.lr:g}, batch of {batch.size})"
            )
        loss.backward()
        for embedding in self._embeddings:
            embedding.zero_padding_grad()
        norm = clip_grad_norm(self.optimizer.parameters, self.config.clip_norm)
        if not math.isfinite(norm):
            raise TrainingDiverged(
                f"non-finite gradient norm (lr={self.optimizer.lr:g}); "
                "consider a lower learning rate or tighter clip_norm"
            )
        self.optimizer.step()
        self.model.zero_grad()
        return loss_value, norm

    def evaluate_loss(self, iterator: BatchIterator) -> float:
        """Token-weighted mean dev loss (no dropout, no graph)."""
        self.model.eval()
        total_loss = 0.0
        total_tokens = 0
        with no_grad():
            for batch in iterator:
                tokens = batch.num_target_tokens
                total_loss += self.model.loss(batch).item() * tokens
                total_tokens += tokens
        if total_tokens == 0:
            raise ValueError("evaluation iterator produced no target tokens")
        return total_loss / total_tokens

    # ------------------------------------------------------------------
    def train(self) -> TrainingHistory:
        """Run the full schedule; returns (and stores) the history.

        If a dev iterator is present, the parameters of the best-dev epoch
        are kept in :attr:`best_state` and restored at the end, so the
        trained model is the early-stopped one.
        """
        epochs_without_improvement = 0
        best_dev = float("inf")

        for epoch in range(1, self.config.epochs + 1):
            lr = self.schedule.apply(epoch)
            epoch_loss = 0.0
            epoch_tokens = 0
            norm_total = 0.0
            batches = 0
            for batch_index, batch in enumerate(self.train_iterator, start=1):
                loss, norm = self.train_batch(batch)
                epoch_loss += loss * batch.num_target_tokens
                epoch_tokens += batch.num_target_tokens
                norm_total += norm
                batches += 1
                if self.config.log_every and batch_index % self.config.log_every == 0:
                    print(
                        f"epoch {epoch} batch {batch_index}/{len(self.train_iterator)} "
                        f"loss {loss:.4f} lr {lr:g}"
                    )

            dev_loss = self.evaluate_loss(self.dev_iterator) if self.dev_iterator else None
            record = EpochRecord(
                epoch=epoch,
                train_loss=epoch_loss / max(1, epoch_tokens),
                learning_rate=lr,
                grad_norm=norm_total / max(1, batches),
                dev_loss=dev_loss,
            )
            self.history.append(record)
            if self.epoch_callback:
                self.epoch_callback(record)

            if dev_loss is not None:
                if dev_loss < best_dev - 1e-6:
                    best_dev = dev_loss
                    self.best_state = self.model.state_dict()
                    epochs_without_improvement = 0
                else:
                    epochs_without_improvement += 1
                    patience = self.config.early_stopping_patience
                    if patience is not None and epochs_without_improvement >= patience:
                        break

        if self.best_state is not None:
            self.model.load_state_dict(self.best_state)
        return self.history
