"""Overflow-skip training: quarantine non-finite batches instead of dying.

The historical contract was binary: any non-finite loss or gradient raised
:class:`~repro.training.trainer.TrainingDiverged`, and the resilience layer
(if configured) rolled the whole run back to a snapshot with a halved
learning rate. That is the right escalation for a *diverged* run, but it is
a heavyweight response to a *single* pathological batch — one outlier
paragraph can cost a full epoch of replayed work.

This module supplies the graduated response, modeled on mixed-precision
dynamic loss scaling (the GPU-era machinery that made "skip the step,
shrink the scale, move on" the standard reaction to overflow):

- :class:`BatchQuarantined` — the typed control-flow event raised by
  ``Trainer.train_batch`` under ``overflow_policy="skip"``; the epoch loop
  catches it, drops the batch from the epoch averages, and keeps going.
- :class:`DynamicLossScaler` — tracks consecutive-good/bad step counts and
  a multiplicative loss scale. With the default ``init_scale=1.0`` and
  growth disabled it is inert (training is byte-identical to a run without
  it); tests and ablations can enable real scaling.
- :class:`OverflowPolicy` — the valid ``overflow_policy`` names and the
  escalation bookkeeping shared by the trainer and the CLI.

Escalation: ``skip`` still raises ``TrainingDiverged`` after
``overflow_max_consecutive`` quarantines in a row — a model that cannot
produce a finite step anymore has diverged, and pretending otherwise just
starves the epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["OverflowPolicy", "BatchQuarantined", "DynamicLossScaler"]


class OverflowPolicy:
    """Valid ``overflow_policy`` values for :class:`TrainerConfig`."""

    SKIP = "skip"
    ROLLBACK = "rollback"
    RAISE = "raise"
    ALL = (SKIP, ROLLBACK, RAISE)

    @staticmethod
    def validate(policy: str) -> str:
        if policy not in OverflowPolicy.ALL:
            raise ValueError(
                f"overflow_policy must be one of {OverflowPolicy.ALL}, got {policy!r}"
            )
        return policy


class BatchQuarantined(ArithmeticError):
    """A batch produced a non-finite loss or gradient and was skipped.

    Raised by ``Trainer.train_batch`` under ``overflow_policy="skip"``;
    caught by the epoch loop, which zeroes the half-written gradients,
    bumps the quarantine counters, and continues with the next batch. The
    batch contributes nothing to the epoch averages or the step counter.
    """

    def __init__(self, message: str, cause: str, step: int, value: float | None = None):
        super().__init__(message)
        self.cause = cause
        """Machine-readable reason (``nonfinite_loss``,
        ``nonfinite_grad_norm``, or ``anomaly:<op>``)."""
        self.step = step
        self.value = value
        """The offending scalar (loss value or grad norm) when one exists."""


@dataclass
class DynamicLossScaler:
    """AMP-style dynamic loss scale with skip-on-overflow bookkeeping.

    The loss is multiplied by :attr:`scale` before ``backward`` and the
    gradients divided by it before clipping. On a quarantined batch the
    scale backs off; after ``growth_interval`` consecutive good steps it
    grows back. Defaults are deliberately inert — ``init_scale=1.0`` with
    ``growth_interval=0`` (growth disabled) means the loss is never
    touched and training is bit-for-bit identical to the unscaled loop.
    """

    init_scale: float = 1.0
    growth_factor: float = 2.0
    backoff_factor: float = 0.5
    growth_interval: int = 0
    """Consecutive good steps before the scale grows (0 disables growth)."""
    min_scale: float = 2.0**-14
    max_scale: float = 2.0**16

    scale: float = field(init=False)
    good_steps: int = field(init=False, default=0)
    overflows: int = field(init=False, default=0)
    consecutive_overflows: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.init_scale <= 0:
            raise ValueError(f"init_scale must be positive, got {self.init_scale}")
        if not 0 < self.backoff_factor < 1:
            raise ValueError(f"backoff_factor must be in (0, 1), got {self.backoff_factor}")
        if self.growth_factor <= 1:
            raise ValueError(f"growth_factor must be > 1, got {self.growth_factor}")
        self.scale = float(self.init_scale)

    @property
    def active(self) -> bool:
        """True when the current scale actually changes the loss."""
        return self.scale != 1.0

    def on_overflow(self) -> float:
        """Record a quarantined batch; back the scale off. Returns new scale."""
        self.overflows += 1
        self.consecutive_overflows += 1
        self.good_steps = 0
        self.scale = max(self.min_scale, self.scale * self.backoff_factor)
        return self.scale

    def on_good_step(self) -> float:
        """Record a finite step; grow the scale when due. Returns new scale."""
        self.consecutive_overflows = 0
        self.good_steps += 1
        if self.growth_interval and self.good_steps >= self.growth_interval:
            self.good_steps = 0
            self.scale = min(self.max_scale, self.scale * self.growth_factor)
        return self.scale

    def state_dict(self) -> dict:
        return {
            "scale": self.scale,
            "good_steps": self.good_steps,
            "overflows": self.overflows,
            "consecutive_overflows": self.consecutive_overflows,
        }

    def load_state_dict(self, state: dict) -> None:
        self.scale = float(state["scale"])
        self.good_steps = int(state["good_steps"])
        self.overflows = int(state["overflows"])
        self.consecutive_overflows = int(state["consecutive_overflows"])
