"""Fault-tolerant training runtime: run snapshots, rotation, RNG capture.

The paper's recipe (SGD at lr=1.0, halved at epoch 8) is exactly the regime
where long runs die mid-epoch or diverge on unlucky seeds. This module
provides the persistence layer the :class:`~repro.training.trainer.Trainer`
uses to survive both:

- :class:`SnapshotStore` — a directory of rotated run snapshots. Each
  snapshot is an ``.npz`` (model + optimizer arrays) plus a ``.json``
  (cursors, RNG states, history) written under the atomic-rename scheme of
  :mod:`repro.tensor.serialization`; the JSON records the digest of the
  exact archive generation it belongs to, so a torn pair is detected as
  :class:`CheckpointCorrupted` and skipped, never silently half-loaded.
  The newest ``keep_last`` periodic snapshots are kept; ``best`` is pinned
  outside the rotation.
- RNG capture — every source of randomness in a run is an explicitly
  seeded ``numpy.random.Generator`` (see docs/architecture.md,
  "Determinism"); :func:`capture_module_rng_states` walks a model's module
  tree and records each generator's bit-generator state by module path so
  a resumed run draws the identical stream, making resume bit-exact.

Snapshot layout on disk::

    <directory>/
      snap-0000000042.npz   # arrays: model::*, opt::*, best::*
      snap-0000000042.json  # commit point: cursors, RNG, history, digest
      best.npz / best.json  # pinned best-dev parameters (never rotated)
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.tensor.serialization import (
    CheckpointCorrupted,
    atomic_write,
    file_digest,
    load_arrays,
    save_arrays,
)

__all__ = [
    "ResilienceConfig",
    "SnapshotStore",
    "capture_rng_state",
    "restore_rng_state",
    "capture_module_rng_states",
    "restore_module_rng_states",
]

_SNAP_FORMAT = 1
_SNAP_RE = re.compile(r"^snap-(\d{10})\.json$")


# ----------------------------------------------------------------------
# RNG state capture
# ----------------------------------------------------------------------
def capture_rng_state(generator: np.random.Generator) -> dict:
    """JSON-able bit-generator state of a numpy Generator."""
    return generator.bit_generator.state


def restore_rng_state(generator: np.random.Generator, state: Mapping) -> None:
    """Restore a state captured by :func:`capture_rng_state` in place."""
    generator.bit_generator.state = dict(state)


def _iter_module_generators(model):
    """Yield ``(path.attr, generator)`` for every Generator owned by a module."""
    for module_name, module in model.named_modules():
        for attr, value in vars(module).items():
            if isinstance(value, np.random.Generator):
                key = f"{module_name}.{attr}" if module_name else attr
                yield key, value


def capture_module_rng_states(model) -> dict[str, dict]:
    """Snapshot every RNG in a model's module tree, keyed by module path."""
    return {key: capture_rng_state(gen) for key, gen in _iter_module_generators(model)}


def restore_module_rng_states(model, states: Mapping[str, Mapping]) -> None:
    """Restore states captured by :func:`capture_module_rng_states`.

    Raises :class:`ValueError` if the model's RNG inventory does not match
    the snapshot's — resuming into a differently-configured model is a bug,
    not something to paper over.
    """
    own = dict(_iter_module_generators(model))
    missing = sorted(set(own) - set(states))
    unexpected = sorted(set(states) - set(own))
    if missing or unexpected:
        raise ValueError(
            f"RNG inventory mismatch: model has {missing} not in snapshot, "
            f"snapshot has {unexpected} not in model"
        )
    for key, gen in own.items():
        restore_rng_state(gen, states[key])


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ResilienceConfig:
    """How the trainer snapshots and recovers.

    Parameters
    ----------
    directory:
        Where snapshots live. Created on first write.
    every_n_batches:
        Also snapshot every N optimization steps (0 = per-epoch only).
    keep_last:
        Rotating window of periodic snapshots kept on disk (``best`` is
        pinned outside this budget).
    max_retries:
        Divergence-recovery budget: how many times a run may roll back to
        the last good snapshot and halve the learning rate before
        :class:`~repro.training.trainer.TrainingDiverged` is re-raised.
    backoff_factor:
        Multiplier applied to the schedule's base learning rate on each
        recovery (0.5 = halve, per the paper's own decay step).
    handle_signals:
        Install SIGINT/SIGTERM handlers for the duration of ``train()`` that
        write a final graceful snapshot before exiting.
    """

    directory: str | os.PathLike
    every_n_batches: int = 0
    keep_last: int = 3
    max_retries: int = 2
    backoff_factor: float = 0.5
    handle_signals: bool = False

    def __post_init__(self) -> None:
        if self.every_n_batches < 0:
            raise ValueError(f"every_n_batches must be >= 0, got {self.every_n_batches}")
        if self.keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {self.keep_last}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if not 0.0 < self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be in (0, 1), got {self.backoff_factor}")


# ----------------------------------------------------------------------
# Snapshot store
# ----------------------------------------------------------------------
class SnapshotStore:
    """Rotated, checksummed run snapshots in one directory.

    A snapshot is a ``(.npz, .json)`` pair; the JSON is written last and is
    the commit point (it records the digest of its archive). Any crash
    leaves either a complete pair, an invisible orphan archive, or a torn
    pair that validation rejects — :meth:`latest_valid` therefore always
    lands on the newest snapshot that is actually loadable.
    """

    def __init__(self, directory: str | os.PathLike, keep_last: int = 3) -> None:
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        self.directory = os.fspath(directory)
        self.keep_last = keep_last

    # -- writing -------------------------------------------------------
    def save(self, step: int, arrays: Mapping[str, np.ndarray], meta: dict) -> str:
        """Write the rotating snapshot for ``step``; returns its base path."""
        base = os.path.join(self.directory, f"snap-{step:010d}")
        self._write_pair(base, arrays, {**meta, "step": int(step)})
        self._rotate()
        return base

    def save_pinned(self, name: str, arrays: Mapping[str, np.ndarray], meta: dict) -> str:
        """Write a snapshot outside the rotation window (e.g. ``best``)."""
        if _SNAP_RE.match(name + ".json"):
            raise ValueError(f"pinned name {name!r} collides with rotating snapshots")
        base = os.path.join(self.directory, name)
        self._write_pair(base, arrays, meta)
        return base

    def _write_pair(self, base: str, arrays: Mapping[str, np.ndarray], meta: dict) -> None:
        npz_path = base + ".npz"
        save_arrays(npz_path, arrays)
        payload = {
            "format": _SNAP_FORMAT,
            "npz_sha256": file_digest(npz_path),
            "meta": meta,
        }
        atomic_write(
            base + ".json",
            lambda handle: json.dump(payload, handle, indent=2),
            binary=False,
        )

    def _rotate(self) -> None:
        steps = self.list_steps()
        for step in steps[: max(0, len(steps) - self.keep_last)]:
            base = os.path.join(self.directory, f"snap-{step:010d}")
            # JSON first: without its commit record the pair is invisible,
            # so a crash mid-rotation cannot produce a torn-looking snapshot.
            for path in (base + ".json", base + ".npz"):
                try:
                    os.unlink(path)
                except FileNotFoundError:
                    pass

    # -- reading -------------------------------------------------------
    def list_steps(self) -> list[int]:
        """Step indices of rotating snapshots on disk (ascending)."""
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return []
        steps = []
        for name in names:
            match = _SNAP_RE.match(name)
            if match:
                steps.append(int(match.group(1)))
        return sorted(steps)

    def load(self, base: str) -> tuple[dict[str, np.ndarray], dict]:
        """Load and validate one snapshot pair; raises CheckpointCorrupted."""
        json_path = base + ".json"
        npz_path = base + ".npz"
        try:
            with open(json_path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            raise
        except (json.JSONDecodeError, OSError) as exc:
            raise CheckpointCorrupted(f"unreadable snapshot metadata {json_path}: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("format") != _SNAP_FORMAT:
            raise CheckpointCorrupted(f"unrecognized snapshot format in {json_path}")
        if not os.path.exists(npz_path):
            raise CheckpointCorrupted(f"snapshot archive missing: {npz_path}")
        actual = file_digest(npz_path)
        if actual != payload.get("npz_sha256"):
            raise CheckpointCorrupted(
                f"torn snapshot {base}: metadata records digest "
                f"{str(payload.get('npz_sha256'))[:12]}…, archive has {actual[:12]}…"
            )
        arrays = load_arrays(npz_path)
        return arrays, payload["meta"]

    def load_step(self, step: int) -> tuple[dict[str, np.ndarray], dict]:
        return self.load(os.path.join(self.directory, f"snap-{step:010d}"))

    def load_pinned(self, name: str) -> tuple[dict[str, np.ndarray], dict]:
        return self.load(os.path.join(self.directory, name))

    def latest_valid(self) -> tuple[dict[str, np.ndarray], dict] | None:
        """Newest loadable snapshot, skipping corrupted generations.

        Returns ``None`` when no valid snapshot exists at all.
        """
        for step in reversed(self.list_steps()):
            try:
                return self.load_step(step)
            except (CheckpointCorrupted, FileNotFoundError):
                continue
        return None
