"""Figure 1 — the ACNN architecture diagram.

Figure 1 of the paper is a schematic, not a measurement; we reproduce it as
a structural self-description: the component inventory of an instantiated
ACNN, with the Eq. 2-4 wiring spelled out, plus the expected parameter
inventory. The benchmark for this "figure" asserts the architecture contains
exactly the components the diagram shows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.configs import DEFAULT, ExperimentScale
from repro.models import ACNN, build_model

__all__ = ["Figure1Result", "run_figure1", "EXPECTED_COMPONENTS"]

EXPECTED_COMPONENTS = (
    "encoder_embedding",
    "decoder_embedding",
    "encoder",          # bidirectional LSTM
    "decoder",          # LSTM
    "attention",        # global attention (W_h)
    "readout",          # W_k
    "output_projection",  # W_y
    "copy_projection",  # Eq. 3's V
    "switch_d",         # Eq. 4's W_d
    "switch_c",         # Eq. 4's W_c
    "switch_y",         # Eq. 4's W_s
)


@dataclass
class Figure1Result:
    description: str
    component_names: tuple[str, ...]
    num_parameters: int

    def render(self) -> str:
        lines = [
            "Figure 1 (architecture reproduction)",
            self.description,
            "",
            f"registered components: {', '.join(self.component_names)}",
            f"total parameters: {self.num_parameters:,}",
        ]
        return "\n".join(lines)


def run_figure1(scale: ExperimentScale = DEFAULT) -> Figure1Result:
    """Instantiate ACNN at the given scale and describe its structure."""
    model = build_model("acnn", scale.model_config(), scale.encoder_vocab_size, scale.decoder_vocab_size)
    assert isinstance(model, ACNN)
    parameter_roots = sorted({name.split(".")[0] for name, _ in model.named_parameters()})
    return Figure1Result(
        description=model.describe(),
        component_names=tuple(parameter_roots),
        num_parameters=model.num_parameters(),
    )
