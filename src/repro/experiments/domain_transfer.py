"""Domain-transfer experiment (the paper's future-work direction).

Section 5 of the paper: "The copying mechanism can also be expected to allow
model adaptation across domains." This experiment operationalizes that
claim on the synthetic corpus: train on one *domain* of fact templates
(geography-flavoured), evaluate on a disjoint domain (people/organisations).
Question patterns differ across domains, but the copy skill — point at the
entity and reproduce it — transfers. The hypothesis: the ACNN degrades less
out-of-domain than the attention-only baseline, measured both by BLEU and by
out-of-vocabulary entity recall.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.dataset import QGDataset, SourceMode
from repro.data.synthetic import SyntheticConfig, generate_corpus
from repro.evaluation.analysis import analyse_predictions
from repro.evaluation.evaluator import EvaluationResult, evaluate_model
from repro.evaluation.reporting import format_table
from repro.experiments.configs import DEFAULT, ExperimentScale
from repro.experiments.runner import SystemSpec, run_system

__all__ = [
    "SOURCE_DOMAIN",
    "TARGET_DOMAIN",
    "DomainTransferResult",
    "run_domain_transfer",
]

SOURCE_DOMAIN: tuple[str, ...] = ("birth", "capital", "river", "mountain", "population")
"""Training domain: geography-flavoured templates."""

TARGET_DOMAIN: tuple[str, ...] = ("design", "acquisition", "book", "university", "invention")
"""Held-out domain: people/organisation templates, never seen in training."""


@dataclass
class DomainTransferResult:
    scale: ExperimentScale
    in_domain: dict[str, EvaluationResult] = field(default_factory=dict)
    out_of_domain: dict[str, EvaluationResult] = field(default_factory=dict)
    oov_recall: dict[str, dict[str, float]] = field(default_factory=dict)

    def render(self) -> str:
        rows_in = {name: result.scores for name, result in self.in_domain.items()}
        rows_out = {name: result.scores for name, result in self.out_of_domain.items()}
        pieces = [
            format_table(rows_in, title=f"In-domain test (scale={self.scale.name})"),
            "",
            format_table(rows_out, title="Out-of-domain test (disjoint templates)"),
            "",
            "OOV entity recall (copyable tokens reproduced):",
        ]
        for name, recalls in self.oov_recall.items():
            pieces.append(
                f"  {name}: in-domain {100 * recalls['in']:.1f}%, "
                f"out-of-domain {100 * recalls['out']:.1f}%"
            )
        return "\n".join(pieces)

    def copy_transfers(self) -> bool:
        """The future-work hypothesis: ACNN keeps higher OOV recall than the
        attention baseline on the unseen domain."""
        return self.oov_recall["ACNN"]["out"] > self.oov_recall["Du-attention"]["out"]


def run_domain_transfer(
    scale: ExperimentScale = DEFAULT,
    verbose: bool = False,
) -> DomainTransferResult:
    """Train on SOURCE_DOMAIN, evaluate on both domains."""
    train_corpus = generate_corpus(
        SyntheticConfig(
            num_train=scale.num_train,
            num_dev=scale.num_dev,
            num_test=scale.num_test,
            seed=scale.corpus_seed,
            template_names=SOURCE_DOMAIN,
        )
    )
    target_corpus = generate_corpus(
        SyntheticConfig(
            num_train=1,  # only the test split is used
            num_dev=1,
            num_test=scale.num_test,
            seed=scale.corpus_seed + 1,
            template_names=TARGET_DOMAIN,
        )
    )

    result = DomainTransferResult(scale=scale)
    systems = (
        ("Du-attention", "du-attention", 1),
        ("ACNN", "acnn", 3),
    )
    for label, family, seed_offset in systems:
        spec = SystemSpec(
            key=label,
            label=label,
            family=family,
            source_mode=SourceMode.SENTENCE,
            seed_offset=seed_offset,
        )
        if verbose:
            print(f"== {label}: training on domain {SOURCE_DOMAIN} ==")
        run = run_system(spec, scale, corpus=train_corpus, verbose=verbose)
        result.in_domain[label] = run.result

        # Out-of-domain test set encoded with the TRAINING vocabularies.
        train_dataset = run.datasets[0]
        encoder_vocab = train_dataset.encoder_vocab
        decoder_vocab = train_dataset.decoder_vocab
        ood_dataset = QGDataset(
            target_corpus.test,
            encoder_vocab,
            decoder_vocab,
            source_mode=SourceMode.SENTENCE,
            max_question_length=scale.max_decode_length,
        )
        ood_result = evaluate_model(
            run.model,
            ood_dataset,
            beam_size=scale.beam_size,
            max_length=scale.max_decode_length,
            batch_size=scale.batch_size,
        )
        result.out_of_domain[label] = ood_result

        in_analysis = analyse_predictions(
            run.result.predictions, run.result.references, decoder_vocab
        )
        out_analysis = analyse_predictions(
            ood_result.predictions, ood_result.references, decoder_vocab
        )
        result.oov_recall[label] = {
            "in": in_analysis.oov_entity_recall,
            "out": out_analysis.oov_entity_recall,
        }
        if verbose:
            print(f"  in-domain : {run.result.summary()}")
            print(f"  out-domain: {ood_result.summary()}")
    return result
