"""CLI entry point: ``python -m repro.experiments <experiment> [options]``.

Examples
--------
List everything::

    python -m repro.experiments list

Regenerate Table 1 at the recorded (DEFAULT) scale::

    python -m repro.experiments table1

Quick plumbing check::

    python -m repro.experiments table2 --scale smoke
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments.configs import SCALES
from repro.experiments.registry import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="acnn-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id, or 'list' to enumerate",
    )
    parser.add_argument(
        "--scale",
        default="default",
        choices=sorted(SCALES),
        help="experiment scale (default: 'default'; 'smoke' for a fast check)",
    )
    parser.add_argument("--quiet", action="store_true", help="suppress progress output")
    parser.add_argument(
        "--run-dir",
        default=None,
        help=(
            "directory for per-system snapshots and completion markers "
            "(default: runs/experiments/<experiment>-<scale> when --resume "
            "or --max-retries is used)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "continue an interrupted run from --run-dir: finished systems "
            "are reloaded, the in-flight one restarts from its latest valid "
            "snapshot"
        ),
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=0,
        help=(
            "divergence-recovery budget per system: on a non-finite loss, "
            "roll back to the last good snapshot with a halved learning "
            "rate up to this many times (default 0 = fail fast)"
        ),
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=0,
        help="also snapshot every N batches (0 = per-epoch snapshots only)",
    )
    parser.add_argument(
        "--telemetry-dir",
        default=None,
        help=(
            "write a structured JSONL event trace per system under this "
            "directory (training gauges, span tree, decode throughput, "
            "health sentinels); resumed runs continue the same trace"
        ),
    )
    parser.add_argument(
        "--log-every",
        type=int,
        default=0,
        help="emit a per-batch progress line every N batches (0 = per-epoch only)",
    )
    parser.add_argument(
        "--elastic",
        action="store_true",
        help=(
            "train each system on the elastic multiprocess runtime "
            "(coordinator + supervised gradient workers; bit-identical "
            "parameters at any worker count)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="gradient worker processes for --elastic (implies --elastic; default 2)",
    )
    parser.add_argument(
        "--worker-timeout",
        type=float,
        default=30.0,
        help="seconds without a heartbeat before a worker is declared dead",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for experiment in EXPERIMENTS.values():
            print(f"{experiment.key:16s} {experiment.paper_artifact:10s} {experiment.description}")
        return 0

    if args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; run 'list' to enumerate",
            file=sys.stderr,
        )
        return 2

    experiment = EXPERIMENTS[args.experiment]
    scale = SCALES[args.scale]
    if scale.name == "paper":
        print(
            "the 'paper' scale documents the original configuration and is not "
            "runnable on this substrate; use --scale default",
            file=sys.stderr,
        )
        return 2

    wants_resilience = args.resume or args.max_retries > 0 or args.run_dir is not None
    runner_kwargs: dict = {}
    if wants_resilience:
        if not experiment.supports_resume:
            print(
                f"note: {experiment.key} does not support --resume/--max-retries; "
                "running without fault tolerance",
                file=sys.stderr,
            )
        else:
            run_dir = args.run_dir or os.path.join(
                "runs", "experiments", f"{experiment.key}-{scale.name}"
            )
            runner_kwargs = {
                "run_dir": run_dir,
                "resume": args.resume,
                "max_retries": args.max_retries,
                "snapshot_every": args.snapshot_every,
            }
            if not args.quiet:
                print(f"snapshots and completion markers under {run_dir}")

    if args.telemetry_dir is not None or args.log_every > 0:
        if not experiment.supports_telemetry:
            print(
                f"note: {experiment.key} does not support --telemetry-dir/"
                "--log-every; running without telemetry",
                file=sys.stderr,
            )
        else:
            runner_kwargs["telemetry_dir"] = args.telemetry_dir
            runner_kwargs["log_every"] = args.log_every
            if args.telemetry_dir is not None and not args.quiet:
                print(f"telemetry traces under {args.telemetry_dir}")

    if args.elastic or args.workers is not None:
        if not experiment.supports_elastic:
            print(
                f"note: {experiment.key} does not support --elastic/--workers; "
                "running single-process",
                file=sys.stderr,
            )
        else:
            runner_kwargs["elastic"] = True
            runner_kwargs["workers"] = args.workers if args.workers is not None else 2
            runner_kwargs["worker_timeout"] = args.worker_timeout
            if not args.quiet:
                print(f"elastic training with {runner_kwargs['workers']} workers")

    result = experiment.runner(scale, verbose=not args.quiet, **runner_kwargs)
    print()
    print(result.render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
