"""CLI entry point: ``python -m repro.experiments <experiment> [options]``.

Examples
--------
List everything::

    python -m repro.experiments list

Regenerate Table 1 at the recorded (DEFAULT) scale::

    python -m repro.experiments table1

Quick plumbing check::

    python -m repro.experiments table2 --scale smoke
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.configs import SCALES
from repro.experiments.registry import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="acnn-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id, or 'list' to enumerate",
    )
    parser.add_argument(
        "--scale",
        default="default",
        choices=sorted(SCALES),
        help="experiment scale (default: 'default'; 'smoke' for a fast check)",
    )
    parser.add_argument("--quiet", action="store_true", help="suppress progress output")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for experiment in EXPERIMENTS.values():
            print(f"{experiment.key:16s} {experiment.paper_artifact:10s} {experiment.description}")
        return 0

    if args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; run 'list' to enumerate",
            file=sys.stderr,
        )
        return 2

    experiment = EXPERIMENTS[args.experiment]
    scale = SCALES[args.scale]
    if scale.name == "paper":
        print(
            "the 'paper' scale documents the original configuration and is not "
            "runnable on this substrate; use --scale default",
            file=sys.stderr,
        )
        return 2

    result = experiment.runner(scale, verbose=not args.quiet)
    print()
    print(result.render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
