"""Seed-variance study: the noise floor under the paper's recipe.

Table 2 of the paper reports differences of fractions of a BLEU point
between truncation lengths. Whether such differences are meaningful depends
on the run-to-run variance of the training recipe, which the paper does not
report. This experiment trains the same system at several init/shuffle
seeds and reports the mean, standard deviation, and range per metric — the
yardstick EXPERIMENTS.md uses when deciding which paper deltas are
resolvable at this scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import SourceMode
from repro.data.synthetic import generate_corpus
from repro.evaluation.evaluator import METRIC_NAMES
from repro.experiments.configs import DEFAULT, ExperimentScale
from repro.experiments.runner import SystemRun, SystemSpec, run_system

__all__ = ["VarianceResult", "run_variance_study"]


@dataclass
class VarianceResult:
    """Per-metric spread across seeds for one system."""

    scale: ExperimentScale
    label: str
    runs: dict[int, SystemRun] = field(default_factory=dict)

    def values(self, metric: str) -> list[float]:
        """Metric values across seeds, in seed order."""
        return [self.runs[seed].scores[metric] for seed in sorted(self.runs)]

    def spread(self, metric: str) -> dict[str, float]:
        """Mean / std / min / max of one metric across seeds."""
        values = np.asarray(self.values(metric))
        return {
            "mean": float(values.mean()),
            "std": float(values.std(ddof=1)) if len(values) > 1 else 0.0,
            "min": float(values.min()),
            "max": float(values.max()),
        }

    def render(self) -> str:
        lines = [
            f"Seed-variance study: {self.label} over seeds {sorted(self.runs)} "
            f"(scale={self.scale.name})",
            f"{'metric':<10s}{'mean':>9s}{'std':>9s}{'min':>9s}{'max':>9s}{'range':>9s}",
        ]
        for metric in METRIC_NAMES:
            s = self.spread(metric)
            lines.append(
                f"{metric:<10s}{s['mean']:>9.2f}{s['std']:>9.2f}"
                f"{s['min']:>9.2f}{s['max']:>9.2f}{s['max'] - s['min']:>9.2f}"
            )
        return "\n".join(lines)


def run_variance_study(
    scale: ExperimentScale = DEFAULT,
    seeds: tuple[int, ...] = (0, 1, 2),
    family: str = "acnn",
    source_mode: str = SourceMode.SENTENCE,
    verbose: bool = False,
) -> VarianceResult:
    """Train one system once per seed (same corpus, different init/shuffle)."""
    if len(seeds) < 1:
        raise ValueError("run_variance_study needs at least one seed")
    corpus = generate_corpus(scale.synthetic_config())
    label = f"{family}-{'sent' if source_mode == SourceMode.SENTENCE else 'para'}"
    result = VarianceResult(scale=scale, label=label)
    for seed in seeds:
        spec = SystemSpec(
            key=f"{label}-seed{seed}",
            label=label,
            family=family,
            source_mode=source_mode,
            seed_offset=100 + seed,
        )
        if verbose:
            print(f"== {label} seed {seed} ==")
        run = run_system(spec, scale, corpus=corpus, verbose=verbose)
        result.runs[seed] = run
        if verbose:
            print(f"  {run.result.summary()}")
    return result
