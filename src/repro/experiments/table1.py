"""Table 1 — main comparison: Seq2Seq, Du-sent, Du-para, ACNN-sent, ACNN-para.

The paper's reported numbers (SQuAD, Du et al. split) are kept in
``PAPER_TABLE1`` for side-by-side comparison. Absolute values from this
harness come from the synthetic corpus at a CPU scale and will differ; the
claims under reproduction are the *orderings*: both ACNN variants beat both
Du variants and Seq2Seq on every metric, and sentence inputs edge out
paragraph inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.synthetic import generate_corpus
from repro.evaluation.reporting import format_table
from repro.experiments.configs import DEFAULT, ExperimentScale
from repro.experiments.runner import TABLE1_SYSTEMS, SystemRun, run_system

__all__ = ["PAPER_TABLE1", "Table1Result", "run_table1"]

PAPER_TABLE1: dict[str, dict[str, float]] = {
    "Seq2Seq": {"BLEU-1": 31.34, "BLEU-2": 13.79, "BLEU-3": 7.36, "BLEU-4": 4.26, "ROUGE-L": 29.75},
    "Du-sent": {"BLEU-1": 43.09, "BLEU-2": 25.96, "BLEU-3": 17.50, "BLEU-4": 12.28, "ROUGE-L": 39.75},
    "Du-para": {"BLEU-1": 42.54, "BLEU-2": 25.33, "BLEU-3": 16.98, "BLEU-4": 11.86, "ROUGE-L": 39.37},
    "ACNN-sent": {"BLEU-1": 44.78, "BLEU-2": 26.83, "BLEU-3": 18.72, "BLEU-4": 13.97, "ROUGE-L": 41.08},
    "ACNN-para": {"BLEU-1": 44.37, "BLEU-2": 26.15, "BLEU-3": 18.02, "BLEU-4": 13.49, "ROUGE-L": 40.57},
}


@dataclass
class Table1Result:
    """Measured scores for each system plus run bookkeeping."""

    scale: ExperimentScale
    runs: dict[str, SystemRun] = field(default_factory=dict)

    @property
    def scores(self) -> dict[str, dict[str, float]]:
        return {label: run.scores for label, run in self.runs.items()}

    def render(self) -> str:
        measured = format_table(self.scores, title=f"Table 1 (measured, scale={self.scale.name})")
        paper = format_table(PAPER_TABLE1, title="Table 1 (paper, SQuAD)")
        return measured + "\n\n" + paper

    def ordering_holds(self) -> dict[str, bool]:
        """The paper's qualitative claims, checked on the measured numbers."""
        scores = self.scores
        bleu4 = {name: s["BLEU-4"] for name, s in scores.items()}
        rouge = {name: s["ROUGE-L"] for name, s in scores.items()}
        return {
            "acnn_sent_beats_du_sent": bleu4["ACNN-sent"] > bleu4["Du-sent"]
            and rouge["ACNN-sent"] > rouge["Du-sent"],
            "acnn_para_beats_du_para": bleu4["ACNN-para"] > bleu4["Du-para"]
            and rouge["ACNN-para"] > rouge["Du-para"],
            "attention_beats_seq2seq": min(bleu4["Du-sent"], bleu4["Du-para"]) > bleu4["Seq2Seq"],
            "acnn_beats_all_baselines": min(bleu4["ACNN-sent"], bleu4["ACNN-para"])
            > max(bleu4["Seq2Seq"], bleu4["Du-sent"], bleu4["Du-para"]),
        }


def run_table1(
    scale: ExperimentScale = DEFAULT,
    systems: tuple = TABLE1_SYSTEMS,
    verbose: bool = False,
    run_dir: str | None = None,
    resume: bool = False,
    max_retries: int = 0,
    snapshot_every: int = 0,
    telemetry_dir: str | None = None,
    log_every: int = 0,
    workers: int | None = None,
    worker_timeout: float = 30.0,
    elastic: bool = False,
) -> Table1Result:
    """Train and evaluate every Table 1 system on a shared corpus.

    With ``run_dir``/``resume`` an interrupted table run continues where it
    stopped: finished systems are reloaded from their completion markers and
    the in-flight system resumes from its latest valid snapshot. With
    ``telemetry_dir`` each system writes its structured event trace under
    ``<telemetry_dir>/<key>/trace.jsonl``.
    """
    corpus = generate_corpus(scale.synthetic_config())
    result = Table1Result(scale=scale)
    for spec in systems:
        if verbose:
            print(f"== {spec.label} ({spec.family}, {spec.source_mode}) ==")
        run = run_system(
            spec,
            scale,
            corpus=corpus,
            verbose=verbose,
            run_dir=run_dir,
            resume=resume,
            max_retries=max_retries,
            snapshot_every=snapshot_every,
            telemetry_dir=telemetry_dir,
            log_every=log_every,
            workers=workers,
            worker_timeout=worker_timeout,
            elastic=elastic,
        )
        result.runs[spec.label] = run
        if verbose:
            print(f"  {run.result.summary()}")
            print(f"  train {run.train_seconds:.1f}s, eval {run.eval_seconds:.1f}s")
    return result
