"""Shared experiment machinery: build data, train a system, evaluate it.

A *system* is a Table 1 row: a model family plus a source granularity
(sentence vs. truncated paragraph). All systems in one experiment share the
same synthetic corpus; each gets vocabularies matching its own source mode,
exactly as Du et al./the paper build separate sentence- and paragraph-level
encoders.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field, replace

from repro.data.batching import BatchIterator
from repro.data.dataset import QGDataset, SourceMode
from repro.data.embeddings import embedding_matrix_for_vocab, pseudo_glove
from repro.data.synthetic import SyntheticCorpus, generate_corpus
from repro.evaluation.evaluator import EvaluationResult, evaluate_model
from repro.experiments.configs import ExperimentScale
from repro.models import build_model
from repro.models.base import QuestionGenerator
from repro.observability import JsonlSink, Telemetry, TerminalSink, use_telemetry
from repro.tensor.serialization import CheckpointCorrupted, atomic_write
from repro.training.checkpoint import load_checkpoint, save_checkpoint
from repro.training.elastic import ElasticConfig, ElasticTrainer
from repro.training.history import TrainingHistory
from repro.training.resilience import ResilienceConfig
from repro.training.trainer import Trainer

import numpy as np

__all__ = ["SystemSpec", "SystemRun", "TABLE1_SYSTEMS", "prepare_datasets", "run_system"]


@dataclass(frozen=True)
class SystemSpec:
    """One row of a results table."""

    key: str
    label: str
    family: str
    source_mode: str
    model_kwargs: dict = field(default_factory=dict)
    seed_offset: int = 0


TABLE1_SYSTEMS: tuple[SystemSpec, ...] = (
    SystemSpec("seq2seq", "Seq2Seq", "seq2seq", SourceMode.SENTENCE, seed_offset=0),
    SystemSpec("du-sent", "Du-sent", "du-attention", SourceMode.SENTENCE, seed_offset=1),
    SystemSpec("du-para", "Du-para", "du-attention", SourceMode.PARAGRAPH, seed_offset=2),
    SystemSpec("acnn-sent", "ACNN-sent", "acnn", SourceMode.SENTENCE, seed_offset=3),
    SystemSpec("acnn-para", "ACNN-para", "acnn", SourceMode.PARAGRAPH, seed_offset=4),
)


@dataclass
class SystemRun:
    """Everything produced by training + evaluating one system."""

    spec: SystemSpec
    model: QuestionGenerator
    result: EvaluationResult
    history: TrainingHistory
    train_seconds: float
    eval_seconds: float
    datasets: tuple[QGDataset, QGDataset, QGDataset] | None = None
    """(train, dev, test) datasets, carrying the vocabularies the system was
    trained with — needed for cross-domain evaluation."""

    @property
    def scores(self) -> dict[str, float]:
        return self.result.scores


def prepare_datasets(
    corpus: SyntheticCorpus,
    scale: ExperimentScale,
    source_mode: str,
    paragraph_length: int | None = None,
) -> tuple[QGDataset, QGDataset, QGDataset]:
    """Train/dev/test datasets with vocabularies built from the train split."""
    length = paragraph_length if paragraph_length is not None else scale.paragraph_length
    encoder_vocab, decoder_vocab = QGDataset.build_vocabs(
        corpus.train,
        encoder_vocab_size=scale.encoder_vocab_size,
        decoder_vocab_size=scale.decoder_vocab_size,
        source_mode=source_mode,
        paragraph_length=length,
    )

    def make(split):
        return QGDataset(
            split,
            encoder_vocab,
            decoder_vocab,
            source_mode=source_mode,
            paragraph_length=length,
            max_question_length=scale.max_decode_length,
        )

    return make(corpus.train), make(corpus.dev), make(corpus.test)


def _apply_pretrained_embeddings(model: QuestionGenerator, train_ds: QGDataset, scale: ExperimentScale) -> None:
    """GloVe-style init (pseudo-GloVe offline) for both embedding tables."""
    rng = np.random.default_rng(scale.model_seed + 500)
    for vocab, embedding in (
        (train_ds.encoder_vocab, model.encoder_embedding),
        (train_ds.decoder_vocab, model.decoder_embedding),
    ):
        vectors = pseudo_glove(vocab.tokens, scale.embedding_dim, seed=scale.corpus_seed)
        matrix = embedding_matrix_for_vocab(vocab, vectors, scale.embedding_dim, rng)
        embedding.load_pretrained(matrix)


_RESULT_FILE = "result.json"
_CHECKPOINT_BASE = "model"
_SNAPSHOT_SUBDIR = "snapshots"


def _system_dir(run_dir: str | os.PathLike, spec: SystemSpec, paragraph_length: int | None) -> str:
    suffix = f"-len{paragraph_length}" if paragraph_length is not None else ""
    return os.path.join(os.fspath(run_dir), spec.key + suffix)


def _persist_completed_system(directory: str, run: SystemRun) -> None:
    """Durable per-system completion marker: checkpoint + scores + history."""
    save_checkpoint(os.path.join(directory, _CHECKPOINT_BASE), run.model)
    payload = {
        "scores": run.result.scores,
        "predictions": [list(p) for p in run.result.predictions],
        "references": [list(r) for r in run.result.references],
        "history": run.history.to_payload(),
        "train_seconds": run.train_seconds,
        "eval_seconds": run.eval_seconds,
    }
    atomic_write(
        os.path.join(directory, _RESULT_FILE),
        lambda handle: json.dump(payload, handle, indent=2),
        binary=False,
    )


def _load_completed_system(
    directory: str,
    spec: SystemSpec,
    scale: ExperimentScale,
    datasets: tuple[QGDataset, QGDataset, QGDataset],
) -> SystemRun:
    """Rebuild a finished system from its completion marker (no retraining)."""
    with open(os.path.join(directory, _RESULT_FILE), encoding="utf-8") as handle:
        payload = json.load(handle)
    train_ds = datasets[0]
    model = build_model(
        spec.family,
        scale.model_config(seed_offset=spec.seed_offset),
        len(train_ds.encoder_vocab),
        len(train_ds.decoder_vocab),
        **spec.model_kwargs,
    )
    load_checkpoint(os.path.join(directory, _CHECKPOINT_BASE), model)
    result = EvaluationResult(
        scores=payload["scores"],
        predictions=tuple(tuple(p) for p in payload["predictions"]),
        references=tuple(tuple(r) for r in payload["references"]),
    )
    return SystemRun(
        spec=spec,
        model=model,
        result=result,
        history=TrainingHistory.from_payload(payload["history"]),
        train_seconds=payload["train_seconds"],
        eval_seconds=payload["eval_seconds"],
        datasets=datasets,
    )


def run_system(
    spec: SystemSpec,
    scale: ExperimentScale,
    corpus: SyntheticCorpus | None = None,
    paragraph_length: int | None = None,
    verbose: bool = False,
    run_dir: str | os.PathLike | None = None,
    resume: bool = False,
    max_retries: int = 0,
    snapshot_every: int = 0,
    telemetry_dir: str | os.PathLike | None = None,
    log_every: int = 0,
    workers: int | None = None,
    worker_timeout: float = 30.0,
    elastic: bool = False,
) -> SystemRun:
    """Train one system and evaluate it on the test split.

    With ``run_dir`` set, the trainer snapshots into
    ``<run_dir>/<key>/snapshots`` (periodically when ``snapshot_every`` > 0,
    always per epoch) and a completion marker is written once the system is
    evaluated; ``resume=True`` then continues an interrupted run from the
    latest valid snapshot — or skips the system entirely if it already
    finished. ``max_retries`` enables divergence recovery (rollback +
    lr backoff) with that budget.

    With ``telemetry_dir`` set, the system appends a structured event trace
    to ``<telemetry_dir>/<key>/trace.jsonl``. Each system owns its own
    trace file so crash/resume truncation in one system never disturbs the
    events of another; snapshots record the trace cursor, and a resumed run
    continues the same file with no gaps or duplicates. ``log_every`` > 0
    overrides the scale's per-batch progress cadence.

    ``elastic=True`` (or ``workers`` set) trains on the elastic
    multiprocess runtime (:class:`~repro.training.elastic.ElasticTrainer`):
    ``workers`` gradient processes (default 2; 0 = inline) supervised with
    ``worker_timeout``-second heartbeats. Snapshots/resume/telemetry work
    unchanged, but elastic and single-process snapshots are not
    interchangeable.
    """
    corpus = corpus or generate_corpus(scale.synthetic_config())
    train_ds, dev_ds, test_ds = prepare_datasets(
        corpus, scale, spec.source_mode, paragraph_length=paragraph_length
    )
    datasets = (train_ds, dev_ds, test_ds)

    system_dir = _system_dir(run_dir, spec, paragraph_length) if run_dir else None
    if system_dir and resume and os.path.exists(os.path.join(system_dir, _RESULT_FILE)):
        try:
            run = _load_completed_system(system_dir, spec, scale, datasets)
            if verbose:
                print(f"  [{spec.label}] already complete in {system_dir}; skipping")
            return run
        except (CheckpointCorrupted, json.JSONDecodeError, KeyError, ValueError, OSError):
            if verbose:
                print(f"  [{spec.label}] completion marker unreadable; retraining")

    model = build_model(
        spec.family,
        scale.model_config(seed_offset=spec.seed_offset),
        len(train_ds.encoder_vocab),
        len(train_ds.decoder_vocab),
        **spec.model_kwargs,
    )
    if scale.use_pretrained_embeddings:
        _apply_pretrained_embeddings(model, train_ds, scale)

    train_iterator = BatchIterator(
        train_ds, batch_size=scale.batch_size, seed=scale.model_seed + spec.seed_offset
    )
    dev_iterator = BatchIterator(dev_ds, batch_size=scale.batch_size, shuffle=False)

    # Per-system telemetry hub. The trace lives next to the snapshots so a
    # resumed run truncates and continues the same file; building it only
    # after the skip check above guarantees no event lands between the sink
    # opening and the trainer's cursor restore.
    telemetry = None
    if telemetry_dir is not None:
        suffix = f"-len{paragraph_length}" if paragraph_length is not None else ""
        trace_dir = os.path.join(os.fspath(telemetry_dir), spec.key + suffix)
        os.makedirs(trace_dir, exist_ok=True)
        sinks = [JsonlSink(os.path.join(trace_dir, "trace.jsonl"))]
        if verbose:
            sinks.append(TerminalSink())
        telemetry = Telemetry(sinks)

    callback = None
    if verbose:
        def callback(record):
            dev = f" dev {record.dev_loss:.4f}" if record.dev_loss is not None else ""
            line = (
                f"  [{spec.label}] epoch {record.epoch}: "
                f"train {record.train_loss:.4f}{dev} (lr {record.learning_rate:g})"
            )
            if telemetry is not None:
                telemetry.log(line)
            else:
                print(line)

    resilience = None
    snapshot_dir = None
    if system_dir:
        snapshot_dir = os.path.join(system_dir, _SNAPSHOT_SUBDIR)
        resilience = ResilienceConfig(
            directory=snapshot_dir,
            every_n_batches=snapshot_every,
            max_retries=max_retries,
        )

    config = scale.trainer_config()
    if log_every:
        config = replace(config, log_every=log_every)

    use_elastic = elastic or workers is not None
    try:
        if use_elastic:
            trainer = ElasticTrainer(
                model,
                train_ds,
                batch_size=scale.batch_size,
                dev_iterator=dev_iterator,
                config=config,
                elastic=ElasticConfig(
                    workers=workers if workers is not None else 2,
                    worker_timeout=worker_timeout,
                ),
                epoch_callback=callback,
                resilience=resilience,
                telemetry=telemetry,
                run_seed=scale.model_seed + spec.seed_offset,
            )
        else:
            trainer = Trainer(
                model,
                train_iterator,
                dev_iterator,
                config,
                epoch_callback=callback,
                resilience=resilience,
                telemetry=telemetry,
            )
        start = time.perf_counter()
        if telemetry is not None:
            with use_telemetry(telemetry):
                history = trainer.train(resume_from=snapshot_dir if resume else None)
        else:
            history = trainer.train(resume_from=snapshot_dir if resume else None)
        train_seconds = time.perf_counter() - start

        start = time.perf_counter()
        result = evaluate_model(
            model,
            test_ds,
            beam_size=scale.beam_size,
            max_length=scale.max_decode_length,
            batch_size=scale.batch_size,
            telemetry=telemetry,
        )
        eval_seconds = time.perf_counter() - start
    finally:
        if telemetry is not None:
            telemetry.close()

    run = SystemRun(
        spec=spec,
        model=model,
        result=result,
        history=history,
        train_seconds=train_seconds,
        eval_seconds=eval_seconds,
        datasets=datasets,
    )
    if system_dir:
        _persist_completed_system(system_dir, run)
    return run
