"""Experiment harness: one runner per paper table/figure plus ablations.

See :mod:`repro.experiments.registry` for the experiment index and
``python -m repro.experiments list`` for the CLI view.
"""

from repro.experiments.configs import DEFAULT, PAPER, SCALES, SMOKE, ExperimentScale
from repro.experiments.runner import TABLE1_SYSTEMS, SystemRun, SystemSpec, run_system

__all__ = [
    "DEFAULT",
    "PAPER",
    "SCALES",
    "SMOKE",
    "ExperimentScale",
    "TABLE1_SYSTEMS",
    "SystemRun",
    "SystemSpec",
    "run_system",
]
