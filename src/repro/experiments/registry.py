"""Registry mapping experiment ids to runners.

Every table/figure of the paper's evaluation, plus the extension ablations,
has an entry; `python -m repro.experiments <id>` and the benchmark suite
both resolve through this table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments import (
    ablations,
    domain_transfer,
    figure1,
    learning_curve,
    table1,
    table2,
    variance,
)
from repro.experiments.configs import ExperimentScale

__all__ = ["Experiment", "EXPERIMENTS"]


@dataclass(frozen=True)
class Experiment:
    """A runnable paper artifact."""

    key: str
    paper_artifact: str
    description: str
    runner: Callable[..., object]
    """Callable taking (scale: ExperimentScale, verbose: bool) and returning
    an object with a ``render() -> str`` method. When ``supports_resume``
    is true, it additionally accepts ``run_dir``/``resume``/``max_retries``/
    ``snapshot_every`` keyword arguments."""
    bench_target: str
    supports_resume: bool = False
    """Whether the runner checkpoints per-system progress so an interrupted
    run can continue via ``--resume`` instead of restarting."""
    supports_telemetry: bool = False
    """Whether the runner accepts ``telemetry_dir``/``log_every`` keyword
    arguments and writes per-system structured event traces."""
    supports_elastic: bool = False
    """Whether the runner accepts ``workers``/``worker_timeout``/``elastic``
    keyword arguments and can train on the elastic multiprocess runtime."""


EXPERIMENTS: dict[str, Experiment] = {
    "table1": Experiment(
        key="table1",
        paper_artifact="Table 1",
        description=(
            "Main comparison: Seq2Seq / Du-sent / Du-para / ACNN-sent / "
            "ACNN-para on BLEU-1..4 and ROUGE-L"
        ),
        runner=lambda scale, verbose=False, **kwargs: table1.run_table1(
            scale, verbose=verbose, **kwargs
        ),
        bench_target="benchmarks/bench_table1.py",
        supports_resume=True,
        supports_telemetry=True,
        supports_elastic=True,
    ),
    "table2": Experiment(
        key="table2",
        paper_artifact="Table 2",
        description="ACNN-para with paragraph truncation length 100 / 120 / 150",
        runner=lambda scale, verbose=False, **kwargs: table2.run_table2(
            scale, verbose=verbose, **kwargs
        ),
        bench_target="benchmarks/bench_table2.py",
        supports_resume=True,
        supports_telemetry=True,
        supports_elastic=True,
    ),
    "figure1": Experiment(
        key="figure1",
        paper_artifact="Figure 1",
        description="Architecture inventory of the ACNN (schematic reproduction)",
        runner=lambda scale, verbose=False: figure1.run_figure1(scale),
        bench_target="benchmarks/bench_figure1.py",
    ),
    "ablation-switch": Experiment(
        key="ablation-switch",
        paper_artifact="(extension)",
        description="Adaptive switch gate vs frozen z in {0, 0.5, 1}",
        runner=lambda scale, verbose=False: ablations.run_switch_ablation(scale, verbose=verbose),
        bench_target="benchmarks/bench_ablation_switch.py",
    ),
    "ablation-beam": Experiment(
        key="ablation-beam",
        paper_artifact="(extension)",
        description="Beam width sweep (1/3/5) on a trained ACNN-sent",
        runner=lambda scale, verbose=False: ablations.run_beam_ablation(scale, verbose=verbose),
        bench_target="benchmarks/bench_ablation_beam.py",
    ),
    "ablation-coverage": Experiment(
        key="ablation-coverage",
        paper_artifact="(extension)",
        description="ACNN with vs without the coverage mechanism (repetition fix)",
        runner=lambda scale, verbose=False: ablations.run_coverage_ablation(
            scale, verbose=verbose
        ),
        bench_target="benchmarks/bench_ablation_coverage.py",
    ),
    "ablation-answer": Experiment(
        key="ablation-answer",
        paper_artifact="(extension)",
        description="ACNN with vs without answer-position encoder tags (Zhou et al. 2017)",
        runner=lambda scale, verbose=False: ablations.run_answer_feature_ablation(
            scale, verbose=verbose
        ),
        bench_target="benchmarks/bench_ablation_answer.py",
    ),
    "learning-curve": Experiment(
        key="learning-curve",
        paper_artifact="(intro motivation)",
        description=(
            "Du-attention vs ACNN across training-set sizes: the copy "
            "advantage in the limited-data regime the paper's intro motivates"
        ),
        runner=lambda scale, verbose=False: learning_curve.run_learning_curve(
            scale, verbose=verbose
        ),
        bench_target="benchmarks/bench_learning_curve.py",
    ),
    "variance": Experiment(
        key="variance",
        paper_artifact="(methodology)",
        description=(
            "Seed-variance of ACNN-sent under the paper's recipe: the noise "
            "floor against which Table 2's sub-point deltas must be judged"
        ),
        runner=lambda scale, verbose=False: variance.run_variance_study(
            scale, verbose=verbose
        ),
        bench_target="benchmarks/bench_variance.py",
    ),
    "domain-transfer": Experiment(
        key="domain-transfer",
        paper_artifact="(future work, §5)",
        description=(
            "Train on geography templates, test on unseen people/organisation "
            "templates: does the copy skill transfer across domains?"
        ),
        runner=lambda scale, verbose=False: domain_transfer.run_domain_transfer(
            scale, verbose=verbose
        ),
        bench_target="benchmarks/bench_domain_transfer.py",
    ),
}
