"""Table 2 — paragraph-length ablation for ACNN-para (100 / 120 / 150).

The paper's finding: increasing the truncation length admits more noisy
context and monotonically *hurts* every metric. The synthetic paragraphs
place the answer-bearing sentence inside the first 100 tokens and fill the
rest with distractor facts, so the same mechanism operates here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.synthetic import generate_corpus
from repro.evaluation.reporting import format_table
from repro.experiments.configs import DEFAULT, ExperimentScale
from repro.experiments.runner import SystemRun, SystemSpec, run_system
from repro.data.dataset import SourceMode

__all__ = ["PAPER_TABLE2", "PARAGRAPH_LENGTHS", "Table2Result", "run_table2"]

PAPER_TABLE2: dict[str, dict[str, float]] = {
    "ACNN-para-150": {"BLEU-1": 43.97, "BLEU-2": 25.63, "BLEU-3": 17.48, "BLEU-4": 12.91, "ROUGE-L": 39.95},
    "ACNN-para-120": {"BLEU-1": 44.22, "BLEU-2": 25.94, "BLEU-3": 17.80, "BLEU-4": 13.26, "ROUGE-L": 40.33},
    "ACNN-para-100": {"BLEU-1": 44.37, "BLEU-2": 26.15, "BLEU-3": 18.02, "BLEU-4": 13.49, "ROUGE-L": 40.57},
}

PARAGRAPH_LENGTHS = (150, 120, 100)


@dataclass
class Table2Result:
    scale: ExperimentScale
    runs: dict[str, SystemRun] = field(default_factory=dict)

    @property
    def scores(self) -> dict[str, dict[str, float]]:
        return {label: run.scores for label, run in self.runs.items()}

    def render(self) -> str:
        measured = format_table(self.scores, title=f"Table 2 (measured, scale={self.scale.name})")
        paper = format_table(PAPER_TABLE2, title="Table 2 (paper, SQuAD)")
        return measured + "\n\n" + paper

    def ordering_holds(self) -> dict[str, bool]:
        """Paper claim: shorter truncation >= longer on the headline metrics."""
        scores = self.scores
        return {
            "len100_beats_len150": scores["ACNN-para-100"]["BLEU-4"]
            > scores["ACNN-para-150"]["BLEU-4"],
            "len100_best_rouge": scores["ACNN-para-100"]["ROUGE-L"]
            >= max(s["ROUGE-L"] for s in scores.values()),
        }


def run_table2(
    scale: ExperimentScale = DEFAULT,
    lengths: tuple[int, ...] = PARAGRAPH_LENGTHS,
    verbose: bool = False,
    run_dir: str | None = None,
    resume: bool = False,
    max_retries: int = 0,
    snapshot_every: int = 0,
    telemetry_dir: str | None = None,
    log_every: int = 0,
    workers: int | None = None,
    worker_timeout: float = 30.0,
    elastic: bool = False,
) -> Table2Result:
    """Train ACNN-para once per truncation length on a shared corpus."""
    corpus = generate_corpus(scale.synthetic_config())
    result = Table2Result(scale=scale)
    for length in lengths:
        label = f"ACNN-para-{length}"
        spec = SystemSpec(
            key=f"acnn-para-{length}",
            label=label,
            family="acnn",
            source_mode=SourceMode.PARAGRAPH,
            seed_offset=4,  # same init as Table 1's ACNN-para
        )
        if verbose:
            print(f"== {label} ==")
        run = run_system(
            spec,
            scale,
            corpus=corpus,
            paragraph_length=length,
            verbose=verbose,
            run_dir=run_dir,
            resume=resume,
            max_retries=max_retries,
            snapshot_every=snapshot_every,
            telemetry_dir=telemetry_dir,
            log_every=log_every,
            workers=workers,
            worker_timeout=worker_timeout,
            elastic=elastic,
        )
        result.runs[label] = run
        if verbose:
            print(f"  {run.result.summary()}")
    return result
