"""Learning-curve experiment: the copy advantage under limited data.

The paper's introduction motivates the ACNN with exactly this failure mode:
"given a limited size of annotated training data, sometimes this neural
model [Du et al.] could fail to generate proper questions". This experiment
quantifies that: train the Du baseline and the ACNN at several training-set
sizes and plot BLEU-4/ROUGE-L vs size. The expected shape: the ACNN's gap
over the baseline is largest in the low-data regime, because copying
replaces the many examples needed to memorize entity distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.dataset import SourceMode
from repro.data.synthetic import SyntheticConfig, generate_corpus
from repro.experiments.configs import DEFAULT, ExperimentScale
from repro.experiments.runner import SystemRun, SystemSpec, run_system

__all__ = ["LearningCurveResult", "run_learning_curve", "DEFAULT_SIZES"]

DEFAULT_SIZES = (250, 500, 1000, 2000)


@dataclass
class LearningCurveResult:
    scale: ExperimentScale
    sizes: tuple[int, ...]
    runs: dict[tuple[str, int], SystemRun] = field(default_factory=dict)

    def series(self, label: str, metric: str = "BLEU-4") -> list[float]:
        """Metric values for one system across the sizes, ascending."""
        return [self.runs[(label, size)].scores[metric] for size in self.sizes]

    def gaps(self, metric: str = "BLEU-4") -> list[float]:
        """ACNN minus Du-attention at each size."""
        acnn = self.series("ACNN", metric)
        baseline = self.series("Du-attention", metric)
        return [a - b for a, b in zip(acnn, baseline)]

    def render(self) -> str:
        lines = [
            f"Learning curve (scale={self.scale.name}); columns = train size",
            "train size     " + "".join(f"{size:>10d}" for size in self.sizes),
        ]
        for metric in ("BLEU-4", "ROUGE-L"):
            lines.append(f"-- {metric} --")
            for label in ("Du-attention", "ACNN"):
                values = self.series(label, metric)
                lines.append(
                    f"{label:<15s}" + "".join(f"{value:>10.2f}" for value in values)
                )
            gaps = self.gaps(metric)
            lines.append(
                f"{'gap (ACNN-Du)':<15s}" + "".join(f"{gap:>+10.2f}" for gap in gaps)
            )
        return "\n".join(lines)

    def acnn_always_ahead(self, metric: str = "ROUGE-L") -> bool:
        return all(gap > 0 for gap in self.gaps(metric))


def run_learning_curve(
    scale: ExperimentScale = DEFAULT,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    verbose: bool = False,
) -> LearningCurveResult:
    """Train Du-attention and ACNN (sentence mode) at each corpus size.

    Every size gets its own corpus prefix (same seed, larger draws), so
    smaller runs are strict subsets of larger ones — the clean way to vary
    only the quantity of supervision.
    """
    result = LearningCurveResult(scale=scale, sizes=tuple(sorted(sizes)))
    full = generate_corpus(
        SyntheticConfig(
            num_train=max(result.sizes),
            num_dev=scale.num_dev,
            num_test=scale.num_test,
            seed=scale.corpus_seed,
        )
    )
    for size in result.sizes:
        subset = type(full)(
            train=full.train[:size],
            dev=full.dev,
            test=full.test,
            config=full.config,
        )
        for label, family, seed_offset in (
            ("Du-attention", "du-attention", 1),
            ("ACNN", "acnn", 3),
        ):
            spec = SystemSpec(
                key=f"{label}-{size}",
                label=label,
                family=family,
                source_mode=SourceMode.SENTENCE,
                seed_offset=seed_offset,
            )
            if verbose:
                print(f"== {label} @ {size} train examples ==")
            run = run_system(spec, scale, corpus=subset, verbose=verbose)
            result.runs[(label, size)] = run
            if verbose:
                print(f"  {run.result.summary()}")
    return result
