"""Extension ablations beyond the paper's tables.

Two design choices the paper motivates but does not ablate:

- **Switch gate** (Section 3.2 argues the gate is *data adaptive*):
  ``run_switch_ablation`` compares the learned gate against frozen variants
  (z=0 pure attention — i.e. Du without extra parameters; z=1 pure copy;
  z=0.5 uniform mixture).
- **Beam width** (Section 4 fixes beam=3): ``run_beam_ablation`` sweeps
  widths on one trained ACNN.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.dataset import SourceMode
from repro.data.synthetic import generate_corpus
from repro.evaluation.evaluator import EvaluationResult, evaluate_model
from repro.evaluation.reporting import format_table
from repro.experiments.configs import DEFAULT, ExperimentScale
from repro.experiments.runner import SystemRun, SystemSpec, prepare_datasets, run_system

__all__ = [
    "SWITCH_VARIANTS",
    "SwitchAblationResult",
    "run_switch_ablation",
    "BeamAblationResult",
    "run_beam_ablation",
    "CoverageAblationResult",
    "run_coverage_ablation",
    "AnswerFeatureAblationResult",
    "run_answer_feature_ablation",
]

SWITCH_VARIANTS: tuple[tuple[str, dict], ...] = (
    ("ACNN (adaptive z)", {"switch_mode": "adaptive"}),
    ("fixed z=0 (no copy)", {"switch_mode": "fixed", "fixed_switch": 0.0}),
    ("fixed z=0.5", {"switch_mode": "fixed", "fixed_switch": 0.5}),
    ("fixed z=1 (copy only)", {"switch_mode": "fixed", "fixed_switch": 1.0}),
)


@dataclass
class SwitchAblationResult:
    scale: ExperimentScale
    runs: dict[str, SystemRun] = field(default_factory=dict)

    @property
    def scores(self) -> dict[str, dict[str, float]]:
        return {label: run.scores for label, run in self.runs.items()}

    def render(self) -> str:
        return format_table(
            self.scores, title=f"Switch-gate ablation (scale={self.scale.name})"
        )

    def adaptive_wins(self) -> bool:
        bleu4 = {label: s["BLEU-4"] for label, s in self.scores.items()}
        adaptive = bleu4.pop("ACNN (adaptive z)")
        return adaptive >= max(bleu4.values())


def run_switch_ablation(
    scale: ExperimentScale = DEFAULT,
    verbose: bool = False,
) -> SwitchAblationResult:
    """Train one ACNN-sent per switch variant on a shared corpus."""
    corpus = generate_corpus(scale.synthetic_config())
    result = SwitchAblationResult(scale=scale)
    for label, kwargs in SWITCH_VARIANTS:
        spec = SystemSpec(
            key=label,
            label=label,
            family="acnn",
            source_mode=SourceMode.SENTENCE,
            model_kwargs=dict(kwargs),
            seed_offset=3,  # match Table 1's ACNN-sent init
        )
        if verbose:
            print(f"== {label} ==")
        run = run_system(spec, scale, corpus=corpus, verbose=verbose)
        result.runs[label] = run
        if verbose:
            print(f"  {run.result.summary()}")
    return result


@dataclass
class CoverageAblationResult:
    """ACNN with vs without the coverage extension (See et al. 2017)."""

    scale: ExperimentScale
    runs: dict[str, SystemRun] = field(default_factory=dict)
    repetition_rates: dict[str, float] = field(default_factory=dict)

    @property
    def scores(self) -> dict[str, dict[str, float]]:
        return {label: run.scores for label, run in self.runs.items()}

    def render(self) -> str:
        table = format_table(
            self.scores, title=f"Coverage ablation (scale={self.scale.name})"
        )
        lines = [table, "", "repeated-bigram rate (stutter):"]
        for label, rate in self.repetition_rates.items():
            lines.append(f"  {label}: {100 * rate:.1f}%")
        return "\n".join(lines)

    def coverage_reduces_repetition(self) -> bool:
        return (
            self.repetition_rates["ACNN + coverage"]
            <= self.repetition_rates["ACNN"]
        )


def run_coverage_ablation(
    scale: ExperimentScale = DEFAULT,
    verbose: bool = False,
) -> CoverageAblationResult:
    """Train ACNN-sent with and without coverage on a shared corpus."""
    from repro.evaluation.analysis import analyse_predictions

    corpus = generate_corpus(scale.synthetic_config())
    result = CoverageAblationResult(scale=scale)
    variants = (
        ("ACNN", {}),
        ("ACNN + coverage", {"use_coverage": True}),
    )
    for label, kwargs in variants:
        spec = SystemSpec(
            key=label,
            label=label,
            family="acnn",
            source_mode=SourceMode.SENTENCE,
            model_kwargs=dict(kwargs),
            seed_offset=3,
        )
        if verbose:
            print(f"== {label} ==")
        run = run_system(spec, scale, corpus=corpus, verbose=verbose)
        result.runs[label] = run
        analysis = analyse_predictions(
            run.result.predictions,
            run.result.references,
            run.datasets[0].decoder_vocab,
        )
        result.repetition_rates[label] = analysis.repeated_bigram_rate
        if verbose:
            print(f"  {run.result.summary()}")
            print(f"  {analysis.summary()}")
    return result


@dataclass
class AnswerFeatureAblationResult:
    """ACNN with vs without answer-position features (Zhou et al. 2017)."""

    scale: ExperimentScale
    runs: dict[str, SystemRun] = field(default_factory=dict)

    @property
    def scores(self) -> dict[str, dict[str, float]]:
        return {label: run.scores for label, run in self.runs.items()}

    def render(self) -> str:
        return format_table(
            self.scores, title=f"Answer-feature ablation (scale={self.scale.name})"
        )


def run_answer_feature_ablation(
    scale: ExperimentScale = DEFAULT,
    verbose: bool = False,
) -> AnswerFeatureAblationResult:
    """Train ACNN-sent with and without the answer-tag encoder features."""
    corpus = generate_corpus(scale.synthetic_config())
    result = AnswerFeatureAblationResult(scale=scale)
    variants = (
        ("ACNN", {}),
        ("ACNN + answer tags", {"use_answer_features": True}),
    )
    for label, kwargs in variants:
        spec = SystemSpec(
            key=label,
            label=label,
            family="acnn",
            source_mode=SourceMode.SENTENCE,
            model_kwargs=dict(kwargs),
            seed_offset=3,
        )
        if verbose:
            print(f"== {label} ==")
        run = run_system(spec, scale, corpus=corpus, verbose=verbose)
        result.runs[label] = run
        if verbose:
            print(f"  {run.result.summary()}")
    return result


@dataclass
class BeamAblationResult:
    scale: ExperimentScale
    results: dict[str, EvaluationResult] = field(default_factory=dict)

    @property
    def scores(self) -> dict[str, dict[str, float]]:
        return {label: res.scores for label, res in self.results.items()}

    def render(self) -> str:
        return format_table(self.scores, title=f"Beam-size ablation (scale={self.scale.name})")


def run_beam_ablation(
    scale: ExperimentScale = DEFAULT,
    beam_sizes: tuple[int, ...] = (1, 3, 5),
    verbose: bool = False,
) -> BeamAblationResult:
    """Train ACNN-sent once, decode the test set at several beam widths."""
    corpus = generate_corpus(scale.synthetic_config())
    spec = SystemSpec(
        key="acnn-sent",
        label="ACNN-sent",
        family="acnn",
        source_mode=SourceMode.SENTENCE,
        seed_offset=3,
    )
    run = run_system(spec, scale, corpus=corpus, verbose=verbose)
    _, _, test_ds = prepare_datasets(corpus, scale, spec.source_mode)

    result = BeamAblationResult(scale=scale)
    for beam in beam_sizes:
        label = f"beam={beam}"
        result.results[label] = evaluate_model(
            run.model,
            test_ds,
            beam_size=beam,
            max_length=scale.max_decode_length,
            batch_size=scale.batch_size,
        )
        if verbose:
            print(f"  {label}: {result.results[label].summary()}")
    return result
