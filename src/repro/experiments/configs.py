"""Experiment scales.

The paper's configuration (``PAPER``) cannot be trained on one CPU core with
a numpy backend (70k pairs, 600-d LSTMs). ``DEFAULT`` is the scaled-down
configuration used for the recorded results in EXPERIMENTS.md: same
mechanisms and schedule, smaller corpus and dimensions. ``SMOKE`` is a
seconds-scale setting for tests and benchmark plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.data.synthetic import SyntheticConfig
from repro.models.config import ModelConfig
from repro.training.trainer import TrainerConfig

__all__ = ["ExperimentScale", "SMOKE", "DEFAULT", "PAPER", "SCALES"]


@dataclass(frozen=True)
class ExperimentScale:
    """Everything an experiment run needs besides the system list."""

    name: str
    # Corpus
    num_train: int
    num_dev: int
    num_test: int
    corpus_seed: int = 13
    # Vocabularies (paper: 45K encoder / 28K decoder)
    encoder_vocab_size: int = 45000
    decoder_vocab_size: int = 28000
    # Model
    embedding_dim: int = 300
    hidden_size: int = 600
    num_layers: int = 2
    dropout: float = 0.3
    model_seed: int = 1
    use_pretrained_embeddings: bool = True
    # Optimization (paper: SGD lr=1.0 halved at epoch 8, batch 64)
    batch_size: int = 64
    epochs: int = 12
    learning_rate: float = 1.0
    halve_at_epoch: int = 8
    clip_norm: float = 5.0
    # Decoding (paper: beam 3)
    beam_size: int = 3
    max_decode_length: int = 30
    # Paragraph truncation default (paper: 100; Table 2 sweeps it)
    paragraph_length: int = 100

    def synthetic_config(self) -> SyntheticConfig:
        return SyntheticConfig(
            num_train=self.num_train,
            num_dev=self.num_dev,
            num_test=self.num_test,
            seed=self.corpus_seed,
        )

    def model_config(self, seed_offset: int = 0) -> ModelConfig:
        return ModelConfig(
            embedding_dim=self.embedding_dim,
            hidden_size=self.hidden_size,
            num_layers=self.num_layers,
            dropout=self.dropout,
            seed=self.model_seed + seed_offset,
        )

    def trainer_config(self) -> TrainerConfig:
        return TrainerConfig(
            epochs=self.epochs,
            learning_rate=self.learning_rate,
            halve_at_epoch=self.halve_at_epoch,
            clip_norm=self.clip_norm,
        )

    def scaled(self, **overrides) -> "ExperimentScale":
        return replace(self, **overrides)


SMOKE = ExperimentScale(
    name="smoke",
    num_train=48,
    num_dev=12,
    num_test=12,
    encoder_vocab_size=400,
    decoder_vocab_size=120,
    embedding_dim=12,
    hidden_size=12,
    num_layers=1,
    dropout=0.0,
    batch_size=12,
    epochs=2,
    halve_at_epoch=2,
    max_decode_length=16,
)
"""Seconds-scale plumbing check; numbers are meaningless."""

DEFAULT = ExperimentScale(
    name="default",
    num_train=2000,
    num_dev=250,
    num_test=250,
    encoder_vocab_size=1500,
    decoder_vocab_size=150,
    embedding_dim=32,
    hidden_size=48,
    num_layers=2,
    dropout=0.3,
    batch_size=32,
    epochs=14,
    halve_at_epoch=10,
    max_decode_length=24,
)
"""The configuration behind EXPERIMENTS.md: CPU-trainable in minutes per
system while preserving the paper's mechanisms and relative orderings."""

PAPER = ExperimentScale(
    name="paper",
    num_train=70484,
    num_dev=10570,
    num_test=11877,
)
"""The paper's exact setting (documentation; not runnable on this substrate
in reasonable time — see DESIGN.md substitutions)."""

SCALES = {scale.name: scale for scale in (SMOKE, DEFAULT, PAPER)}
