"""Request admission: typed request/result records and input sanitization.

Real traffic is empty, whitespace-only, over-long, OOV-dense, or not text
at all. Admission turns each of those into a typed
:class:`~repro.serving.errors.RejectedRequest` with a stable reason code
*before* anything reaches the tensor stack, and normalizes everything that
is admissible (tokenization, length capping, vocabulary coercion) into the
same :class:`~repro.data.dataset.EncodedExample` the training pipeline
produces — the engine never sees a request-shaped object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.dataset import EncodedExample, QGDataset
from repro.data.examples import QGExample
from repro.data.tokenizer import tokenize
from repro.data.vocabulary import Vocabulary
from repro.serving.errors import RejectedRequest

__all__ = [
    "GenerationRequest",
    "GenerationResult",
    "AdmissionPolicy",
    "RequestValidator",
]


@dataclass(frozen=True)
class GenerationRequest:
    """One question-generation request as the outside world sends it."""

    text: str
    request_id: str = ""
    beam_size: int = 3
    max_length: int = 24
    deadline_seconds: float | None = None
    """Per-request budget; ``None`` uses the service default."""


@dataclass(frozen=True)
class GenerationResult:
    """A served request: the question plus how it was produced."""

    request_id: str
    question: str
    tokens: tuple[str, ...]
    rung: str
    """Which degradation rung produced the answer (``beam`` when none)."""
    attempts: int
    """Engine attempts consumed (1 = first try succeeded)."""
    log_prob: float
    latency_seconds: float

    @property
    def degraded(self) -> bool:
        return self.rung != "beam"


@dataclass(frozen=True)
class AdmissionPolicy:
    """Validation limits; anything outside them is rejected, not crashed."""

    max_source_tokens: int = 200
    """Hard cap on tokenized source length."""
    truncate_to: int | None = None
    """When set, sources longer than ``max_source_tokens`` are truncated to
    this many tokens instead of rejected (length *coercion* rather than a
    hard bound)."""
    max_unk_density: float = 0.8
    """Reject when more than this fraction of source tokens fall outside
    the encoder vocabulary — the encoder would see nearly pure ``<unk>``
    and the output would be noise."""
    max_beam_size: int = 16
    max_target_length: int = 100


@dataclass
class _RejectionCounts:
    by_reason: dict[str, int] = field(default_factory=dict)

    def bump(self, reason: str) -> None:
        self.by_reason[reason] = self.by_reason.get(reason, 0) + 1


class RequestValidator:
    """Admission + sanitization against a concrete vocabulary pair."""

    def __init__(
        self,
        encoder_vocab: Vocabulary,
        decoder_vocab: Vocabulary,
        policy: AdmissionPolicy | None = None,
    ) -> None:
        self.encoder_vocab = encoder_vocab
        self.decoder_vocab = decoder_vocab
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.rejections = _RejectionCounts()

    def admit(self, request: GenerationRequest) -> EncodedExample:
        """Validate and normalize; raises :class:`RejectedRequest`.

        Returns the encoded example ready for collation — identical in
        shape to a training example, with vocabulary coercion (unknown
        tokens to ``<unk>`` plus copy-visible OOV slots) applied by the
        same :class:`~repro.data.dataset.QGDataset` code path.
        """
        try:
            return self._admit(request)
        except RejectedRequest as rejection:
            self.rejections.bump(rejection.reason)
            raise

    def _admit(self, request: GenerationRequest) -> EncodedExample:
        policy = self.policy
        if not isinstance(request.text, str):
            raise RejectedRequest(
                "invalid_type", f"text must be str, got {type(request.text).__name__}"
            )
        if request.beam_size < 1 or request.beam_size > policy.max_beam_size:
            raise RejectedRequest(
                "bad_parameters",
                f"beam_size must be in [1, {policy.max_beam_size}], got {request.beam_size}",
            )
        if request.max_length < 1 or request.max_length > policy.max_target_length:
            raise RejectedRequest(
                "bad_parameters",
                f"max_length must be in [1, {policy.max_target_length}], "
                f"got {request.max_length}",
            )
        if request.deadline_seconds is not None and request.deadline_seconds <= 0:
            raise RejectedRequest(
                "bad_parameters",
                f"deadline_seconds must be positive, got {request.deadline_seconds}",
            )

        tokens = tokenize(request.text)
        if not tokens:
            raise RejectedRequest("empty", "no tokens after tokenization")
        if len(tokens) > policy.max_source_tokens:
            if policy.truncate_to is not None:
                tokens = tokens[: policy.truncate_to]
            else:
                raise RejectedRequest(
                    "too_long",
                    f"{len(tokens)} source tokens exceed the cap of "
                    f"{policy.max_source_tokens}",
                )
        unknown = sum(1 for token in tokens if token not in self.encoder_vocab)
        density = unknown / len(tokens)
        if density > policy.max_unk_density:
            raise RejectedRequest(
                "unk_density",
                f"{density:.0%} of tokens are outside the encoder vocabulary "
                f"(limit {policy.max_unk_density:.0%})",
            )

        source = tuple(tokens)
        example = QGExample(sentence=source, paragraph=source, question=("?",))
        dataset = QGDataset([example], self.encoder_vocab, self.decoder_vocab)
        return dataset[0]
