"""The synchronous-core inference service around the decode engines.

One request's life::

    admit (validate/sanitize)  ->  RejectedRequest on bad input
    breaker gate               ->  BreakerOpen while the engine is sick
    degradation ladder         ->  beam -> beam_1 -> greedy -> greedy_truncated,
                                   falling a rung on deadline pressure or a
                                   retryable decode fault
    retry with backoff         ->  a whole-ladder retryable failure backs off
                                   (jittered, deterministic under the seed)
                                   and retries while budget remains
    result                     ->  GenerationResult with the serving rung,
                                   or RequestFailed carrying the final cause

Poison requests — deterministic failures like an IndexError deep in the
stack — fail fast: no retry, no further rungs. Everything is counted, both
in :class:`ServiceStats` and through the telemetry hub (`serving.*`
counters, latency histogram, breaker transitions), and the whole pipeline
is deterministic given the model seed, the fault plan, and a manual clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.data.batching import collate
from repro.data.dataset import EncodedExample
from repro.data.tokenizer import detokenize
from repro.data.vocabulary import PAD_ID, Vocabulary
from repro.decoding.hypothesis import Hypothesis, extended_ids_to_tokens
from repro.observability import emit_state_transition, get_telemetry
from repro.serving.breaker import BreakerConfig, CircuitBreaker, RetryPolicy
from repro.serving.cache import CachedEncoderModel, EncoderStateCache
from repro.serving.deadline import Clock, Deadline
from repro.serving.errors import (
    BreakerOpen,
    DeadlineExceeded,
    RejectedRequest,
    RequestFailed,
    is_retryable,
)
from repro.serving.faults import FaultInjectingModel, FaultInjector, FaultPlan
from repro.serving.ladder import Rung, build_ladder, run_rung
from repro.serving.requests import (
    AdmissionPolicy,
    GenerationRequest,
    GenerationResult,
    RequestValidator,
)

__all__ = ["ServiceConfig", "ServiceStats", "RequestOutcome", "InferenceService"]


@dataclass(frozen=True)
class ServiceConfig:
    default_deadline_seconds: float = 5.0
    length_penalty: float = 1.0
    truncated_length: int = 8
    """Length cap of the ladder's guaranteed-terminating bottom rung."""
    seed: int = 0
    """Seed of the backoff-jitter RNG (byte-determinism under chaos)."""


@dataclass
class ServiceStats:
    """The service's own ledger; mirrored into telemetry counters."""

    admitted: int = 0
    served: int = 0
    rejected: int = 0
    shed: int = 0
    failed: int = 0
    retries: int = 0
    rung_fallbacks: int = 0
    duplicate_results: int = 0
    """Same-id completions dropped by the idempotency guard (re-dispatch)."""
    served_by_rung: dict[str, int] = field(default_factory=dict)
    rejected_by_reason: dict[str, int] = field(default_factory=dict)
    shed_by_reason: dict[str, int] = field(default_factory=dict)
    _served_ids: set[str] = field(default_factory=set, repr=False)

    def bump(self, table: dict[str, int], key: str) -> None:
        table[key] = table.get(key, 0) + 1

    def note_first_completion(self, request_id: str) -> bool:
        """Whether ``request_id`` completes for the first time.

        The idempotency guard behind exactly-once accounting: a request
        re-dispatched after a worker death can resolve twice, and only the
        first completion may count as served. Anonymous requests (empty
        id) carry no identity and are never deduplicated.
        """
        if not request_id:
            return True
        if request_id in self._served_ids:
            return False
        self._served_ids.add(request_id)
        return True

    @property
    def finished(self) -> int:
        return self.served + self.rejected + self.shed + self.failed

    def as_dict(self) -> dict:
        return {
            "admitted": self.admitted,
            "served": self.served,
            "rejected": self.rejected,
            "shed": self.shed,
            "failed": self.failed,
            "retries": self.retries,
            "rung_fallbacks": self.rung_fallbacks,
            "duplicate_results": self.duplicate_results,
            "served_by_rung": dict(sorted(self.served_by_rung.items())),
            "rejected_by_reason": dict(sorted(self.rejected_by_reason.items())),
            "shed_by_reason": dict(sorted(self.shed_by_reason.items())),
        }


@dataclass(frozen=True)
class RequestOutcome:
    """One request's disposition, for callers that must never raise."""

    request_id: str
    status: str
    """``served`` | ``rejected`` | ``shed`` | ``failed``"""
    result: GenerationResult | None = None
    error: str | None = None
    """Error class name for non-served outcomes."""
    reason: str | None = None
    """Rejection/shed reason code when applicable."""
    fingerprint: str | None = None
    """Weight fingerprint the response was produced under (pool serving):
    attributes every outcome to exactly one weight generation across hot
    reloads. ``None`` outside the pool path."""


class InferenceService:
    """Validation, deadlines, degradation, breaker and retries in one place.

    Parameters
    ----------
    model:
        Any :class:`~repro.models.base.QuestionGenerator`.
    encoder_vocab, decoder_vocab:
        The vocabulary pair the model was trained against.
    fault_plan:
        Optional chaos configuration; when active the model is wrapped in
        the :mod:`repro.serving.faults` seam.
    clock:
        Injectable time source shared by deadlines, the breaker cooldown,
        backoff sleeps and fault stalls; pass a
        :class:`~repro.serving.deadline.ManualClock` for determinism.
    telemetry:
        A telemetry hub; defaults to the ambient hub.
    encoder_cache:
        Optional :class:`~repro.serving.cache.EncoderStateCache`. The model
        is wrapped so single-example encodes hit the cache; the fault seam
        wraps *outside* the cache, so injected encode faults still fire on
        cache hits (a hit does not launder away the chaos).
    """

    def __init__(
        self,
        model,
        encoder_vocab: Vocabulary,
        decoder_vocab: Vocabulary,
        policy: AdmissionPolicy | None = None,
        config: ServiceConfig | None = None,
        breaker: CircuitBreaker | None = None,
        breaker_config: BreakerConfig | None = None,
        retry: RetryPolicy | None = None,
        clock: Clock | None = None,
        telemetry=None,
        fault_plan: FaultPlan | None = None,
        encoder_cache: EncoderStateCache | None = None,
    ) -> None:
        self.clock = clock if clock is not None else Clock()
        self.config = config if config is not None else ServiceConfig()
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self.decoder_vocab = decoder_vocab
        self.validator = RequestValidator(encoder_vocab, decoder_vocab, policy)
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            breaker_config, clock=self.clock, on_transition=self._breaker_transition
        )
        self.stats = ServiceStats()
        self._jitter_rng = np.random.default_rng(self.config.seed)
        self.encoder_cache = encoder_cache
        if encoder_cache is not None:
            model = CachedEncoderModel(model, encoder_cache)
        self.injector: FaultInjector | None = None
        if fault_plan is not None and fault_plan.active:
            self.injector = FaultInjector(fault_plan, clock=self.clock)
            model = FaultInjectingModel(model, self.injector)
        self.model = model

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _breaker_transition(self, old: str, new: str) -> None:
        emit_state_transition(
            self.telemetry,
            "serving.breaker",
            old,
            new,
            failure_rate=round(self.breaker.failure_rate(), 3),
        )

    def _note_rejected(self, rejection: RejectedRequest) -> None:
        self.stats.rejected += 1
        self.stats.bump(self.stats.rejected_by_reason, rejection.reason)
        self.telemetry.counter("serving.rejected")
        self.telemetry.counter(f"serving.rejected.{rejection.reason}")

    def note_shed(self, reason: str) -> None:
        self.stats.shed += 1
        self.stats.bump(self.stats.shed_by_reason, reason)
        self.telemetry.counter("serving.shed")
        self.telemetry.counter(f"serving.shed.{reason}")

    def _note_served(self, result: GenerationResult) -> None:
        if not self.stats.note_first_completion(result.request_id):
            self.stats.duplicate_results += 1
            self.telemetry.counter("serving.duplicate_result")
            return
        self.stats.served += 1
        self.stats.bump(self.stats.served_by_rung, result.rung)
        self.telemetry.counter("serving.served")
        self.telemetry.counter(f"serving.rung.{result.rung}")
        self.telemetry.observe("serving.latency_seconds", result.latency_seconds)

    def _note_failed(self) -> None:
        self.stats.failed += 1
        self.telemetry.counter("serving.failed")

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(self, request: GenerationRequest) -> EncodedExample:
        """Validate one request, with counting; raises RejectedRequest."""
        try:
            encoded = self.validator.admit(request)
        except RejectedRequest as rejection:
            self._note_rejected(rejection)
            raise
        self.stats.admitted += 1
        self.telemetry.counter("serving.admitted")
        return encoded

    def start_deadline(self, request: GenerationRequest) -> Deadline:
        budget = request.deadline_seconds
        if budget is None:
            budget = self.config.default_deadline_seconds
        return Deadline(budget, self.clock)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def handle(self, request: GenerationRequest) -> GenerationResult:
        """Serve one request; raises the typed serving errors."""
        encoded = self.admit(request)
        return self.handle_admitted(request, encoded, self.start_deadline(request))

    def handle_admitted(
        self,
        request: GenerationRequest,
        encoded: EncodedExample,
        deadline: Deadline,
    ) -> GenerationResult:
        """The post-admission path (breaker, ladder, retries, accounting)."""
        started = self.clock.now()
        try:
            self.breaker.admit()
        except BreakerOpen:
            self.note_shed("breaker_open")
            raise

        batch = collate([encoded], pad_id=PAD_ID)
        ladder = build_ladder(
            request.beam_size, request.max_length, self.config.truncated_length
        )
        if self.injector is not None:
            self.injector.begin_request()
        last_error: BaseException | None = None
        attempts = 0
        for attempt in range(1, self.retry.max_attempts + 1):
            attempts = attempt
            try:
                hypothesis, rung = self._run_ladder(batch, ladder, deadline)
            except Exception as error:  # noqa: BLE001 - classified below
                self.breaker.record_failure()
                last_error = error
                if not is_retryable(error) or attempt == self.retry.max_attempts:
                    break
                self.stats.retries += 1
                self.telemetry.counter("serving.retries")
                if not deadline.expired():
                    # Past-deadline retries go straight back to the (cheap,
                    # deadline-blind) ladder floor — backing off would only
                    # make the client later.
                    self.clock.sleep(self.retry.delay(attempt, self._jitter_rng))
                continue
            self.breaker.record_success()
            result = self._build_result(
                request, encoded, hypothesis, rung, attempts, started
            )
            self._note_served(result)
            return result

        self._note_failed()
        raise RequestFailed(last_error, attempts)

    def _run_ladder(
        self,
        batch,
        ladder: tuple[Rung, ...],
        deadline: Deadline,
    ) -> tuple[Hypothesis, Rung]:
        """One pass down the rungs; raises the last rung's error if all fail."""
        last_error: BaseException | None = None
        for index, rung in enumerate(ladder):
            is_floor = index == len(ladder) - 1
            if rung.heed_deadline and deadline.expired() and not is_floor:
                # No budget left for a full-cost rung: drop to the floor.
                continue
            try:
                hypotheses = run_rung(
                    rung,
                    self.model,
                    batch,
                    length_penalty=self.config.length_penalty,
                    deadline=deadline,
                    telemetry=self.telemetry,
                )
                return hypotheses[0], rung
            except DeadlineExceeded as error:
                last_error = error
            except Exception as error:  # noqa: BLE001 - classified below
                if not is_retryable(error):
                    raise  # poison: fail fast, no cheaper rung will fix it
                last_error = error
            if not is_floor:
                self.stats.rung_fallbacks += 1
                self.telemetry.counter("serving.rung_fallback")
        assert last_error is not None
        raise last_error

    def _build_result(
        self,
        request: GenerationRequest,
        encoded: EncodedExample,
        hypothesis: Hypothesis,
        rung: Rung,
        attempts: int,
        started: float,
    ) -> GenerationResult:
        tokens = tuple(
            extended_ids_to_tokens(
                hypothesis.token_ids, self.decoder_vocab, encoded.oov_tokens
            )
        )
        log_prob = hypothesis.log_prob
        return GenerationResult(
            request_id=request.request_id,
            question=detokenize(list(tokens)),
            tokens=tokens,
            rung=rung.name,
            attempts=attempts,
            log_prob=log_prob if math.isfinite(log_prob) else float("-inf"),
            latency_seconds=max(0.0, self.clock.now() - started),
        )

    # ------------------------------------------------------------------
    def serve(self, request: GenerationRequest) -> RequestOutcome:
        """Non-raising wrapper: every typed error becomes an outcome row."""
        try:
            result = self.handle(request)
        except RejectedRequest as error:
            return RequestOutcome(
                request.request_id, "rejected", error=type(error).__name__,
                reason=error.reason,
            )
        except BreakerOpen as error:
            return RequestOutcome(
                request.request_id, "shed", error=type(error).__name__,
                reason="breaker_open",
            )
        except RequestFailed as error:
            return RequestOutcome(
                request.request_id, "failed",
                error=type(error.cause).__name__ if error.cause else "unknown",
            )
        return RequestOutcome(request.request_id, "served", result=result)

    def report(self) -> dict:
        """Flush latency windows and return the accounting ledger."""
        self.telemetry.flush_histograms()
        payload = self.stats.as_dict()
        payload["breaker_state"] = self.breaker.state
        if self.injector is not None:
            payload["injected"] = dict(self.injector.injected)
        if self.encoder_cache is not None:
            payload["encoder_cache"] = self.encoder_cache.as_dict()
        return payload
