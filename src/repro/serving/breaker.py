"""Circuit breaker and retry/backoff policy around the decode engine.

The breaker watches a sliding window of engine outcomes. While the engine
is healthy it stays **closed** and admits everything; when the windowed
failure rate crosses the threshold it **opens** and the service fails
fast (no tensor work at all) until a cooldown elapses; it then goes
**half-open**, letting a limited number of probe requests through — enough
consecutive successes close it again, any probe failure re-opens it.

The retry policy is the other half of the fault-handling pair: jittered
exponential backoff for *retryable* faults (see
:func:`repro.serving.errors.is_retryable`), deterministic given its RNG
seed so chaos runs replay byte-identically.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.serving.deadline import Clock
from repro.serving.errors import BreakerOpen

__all__ = ["BreakerConfig", "CircuitBreaker", "RetryPolicy"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    window: int = 20
    """Number of most-recent engine outcomes considered."""
    failure_threshold: float = 0.5
    """Open when the windowed failure rate reaches this."""
    min_samples: int = 5
    """Never open on fewer than this many observed outcomes."""
    cooldown_seconds: float = 5.0
    """How long an open breaker blocks before probing (half-open)."""
    half_open_probes: int = 2
    """Consecutive probe successes required to close again."""


class CircuitBreaker:
    """Closed / open / half-open state machine over a sliding window.

    ``on_transition(old, new)`` is invoked on every state change — the
    service wires it to
    :func:`repro.observability.monitors.emit_state_transition`.
    """

    def __init__(
        self,
        config: BreakerConfig | None = None,
        clock: Clock | None = None,
        on_transition: Callable[[str, str], None] | None = None,
    ) -> None:
        self.config = config if config is not None else BreakerConfig()
        self.clock = clock if clock is not None else Clock()
        self.on_transition = on_transition
        self.state = CLOSED
        self._outcomes: deque[bool] = deque(maxlen=self.config.window)
        self._opened_at = 0.0
        self._probe_successes = 0

    # ------------------------------------------------------------------
    def _transition(self, new: str) -> None:
        old, self.state = self.state, new
        if new == OPEN:
            self._opened_at = self.clock.now()
        if new == HALF_OPEN:
            self._probe_successes = 0
        if new == CLOSED:
            self._outcomes.clear()
        if self.on_transition is not None and old != new:
            self.on_transition(old, new)

    def failure_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(1 for ok in self._outcomes if not ok) / len(self._outcomes)

    def _cooldown_remaining(self) -> float:
        return self._opened_at + self.config.cooldown_seconds - self.clock.now()

    # ------------------------------------------------------------------
    def admit(self) -> None:
        """Gate one request; raises :class:`BreakerOpen` while open.

        An open breaker whose cooldown has elapsed flips to half-open and
        admits the caller as a probe.
        """
        if self.state == OPEN:
            remaining = self._cooldown_remaining()
            if remaining > 0:
                raise BreakerOpen(remaining)
            self._transition(HALF_OPEN)

    def record_success(self) -> None:
        self._outcomes.append(True)
        if self.state == HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.config.half_open_probes:
                self._transition(CLOSED)

    def record_failure(self) -> None:
        self._outcomes.append(False)
        if self.state == HALF_OPEN:
            # A failed probe: the engine is still sick, back off again.
            self._transition(OPEN)
            return
        if (
            self.state == CLOSED
            and len(self._outcomes) >= self.config.min_samples
            and self.failure_rate() >= self.config.failure_threshold
        ):
            self._transition(OPEN)


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff for retryable engine faults."""

    max_attempts: int = 3
    """Total engine attempts per request (1 = no retries)."""
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.5
    """Fraction of the computed delay drawn uniformly at random and added
    on top (decorrelates retry storms; deterministic under a seeded rng)."""

    def delay(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        raw = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter <= 0:
            return raw
        return raw * (1.0 + self.jitter * float(rng.random()))
