"""Supervised multi-process serving pool with re-dispatch and hot reload.

``acnn serve`` was one decode loop in one process. This module scales it
out the same way :class:`~repro.training.elastic.ElasticTrainer` scaled
training: a coordinator forks N decode workers, each running its own
:class:`~repro.serving.engine.ContinuousBatchingEngine` over the model
weights inherited at fork time (read-only after spawn, so the OS shares
the pages — the same discipline that lets elastic workers share the
shard-store mmap). The coordinator owns admission, the request ledger,
telemetry, and the lifecycle; workers own nothing but a pipe and a
frontier.

Supervision state machine (per worker, mirroring the elastic trainer)::

    SPAWNED ── heartbeat ──▶ LIVE ──┬─ death/stall ─▶ BACKOFF
                                    │  (budget left)     │
                                    │               spawn after
                                    │             backoff * 2^k
                                    └─ budget exhausted ─▶ RETIRED
    all RETIRED ──▶ coordinator decodes inline (degrade, don't refuse)

Three robustness contracts layered on top:

- **Exactly-once re-dispatch.** Every admitted request is dispatched to
  exactly one worker; a dead or stalled worker's unresolved requests are
  re-queued (in submission order) and re-dispatched to survivors. The
  ledger is idempotent by request id: a duplicate result — a stall that
  turned out to be slowness, a race between a worker's last write and its
  death — is counted (``duplicate_results``) and dropped, never served
  twice. Results are byte-identical regardless of which worker serves
  them: decode is a pure function of (weights, request), and the engine's
  fixed-width frontier makes cohabitation inert.
- **Graceful drain.** :class:`DrainGuard` converts SIGTERM/SIGINT into a
  latch; :meth:`ServingPool.begin_drain` stops admission (further submits
  shed with reason ``draining``), in-flight requests finish — or expire
  through the ordinary deadline machinery — and the process exits 0 with
  no orphans.
- **Hot weight reload.** :meth:`ServingPool.reload_weights` swaps in a new
  checkpoint via a prepare/commit handshake::

        coordinator                     worker (each live rank)
        stage checkpoint, fingerprint
        ── reload_prepare(gen, path) ─▶ stage into a copy, fingerprint
        ◀─ reload_staged(gen, fp) ────  (serving continues on old weights)
        all survivors staged + fingerprints match?
        ── reload_commit(gen) ────────▶ finish in-flight, swap state,
        ◀─ reload_done(gen, fp) ──────  EncoderStateCache.refresh()
        swap coordinator weights, refresh inline cache

  A worker is never mid-request when it swaps (it drains its frontier
  first), so every response is attributable to exactly one fingerprint.
  Any staging failure or fingerprint mismatch aborts the generation on
  every worker and raises the typed :class:`WeightReloadError`; the fleet
  keeps serving the old weights. Workers that die during a reload are
  respawned only after the coordinator commits, so a fresh fork always
  inherits the committed weights.
"""

from __future__ import annotations

import copy
import os
import signal as signal_module
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field, replace
from multiprocessing import connection as mp_connection
from typing import Mapping

import multiprocessing

from repro.data.dataset import EncodedExample
from repro.data.vocabulary import Vocabulary
from repro.observability import (
    Telemetry,
    emit_worker_pool,
    get_telemetry,
    process_rss_bytes,
)
from repro.serving.cache import EncoderStateCache, fingerprint_model
from repro.serving.deadline import Clock
from repro.serving.engine import ContinuousBatchingEngine, EngineConfig
from repro.serving.errors import RejectedRequest, ServingError
from repro.serving.requests import (
    AdmissionPolicy,
    GenerationRequest,
    RequestValidator,
)
from repro.serving.service import InferenceService, RequestOutcome, ServiceConfig
from repro.training.checkpoint import load_checkpoint

__all__ = [
    "PoolConfig",
    "PoolFaultPlan",
    "PoolStats",
    "ServingPool",
    "WeightReloadError",
    "DrainGuard",
]

_KILL_EXIT_CODE = 37
"""Exit code of a fault-injected worker kill (distinguishable in tests)."""
_STALL_SECONDS = 3600.0
"""A stalled worker sleeps this long; the supervisor kills it far sooner."""
_GAUGE_INTERVAL = 0.5
"""Least seconds between two ``serving.pool.*`` gauge emissions."""


class WeightReloadError(ServingError):
    """A hot reload could not be committed; the old weights keep serving."""


@dataclass(frozen=True)
class PoolConfig:
    """Shape and supervision policy of the decode worker pool.

    Parameters
    ----------
    workers:
        Decode worker processes. Every worker runs a full continuous
        batching engine; requests are spread over the live membership.
    worker_timeout:
        Seconds without a heartbeat before a worker is declared dead.
    heartbeat_interval:
        How often workers send heartbeats (must be < ``worker_timeout``).
    poll_interval:
        Coordinator's supervision cadence while waiting on results.
    max_worker_restarts:
        Per-worker restart budget; exhausting it retires the rank. With
        every rank retired the coordinator decodes inline.
    restart_backoff:
        Base delay before respawning a failed worker; doubles per restart
        of that rank (``backoff * 2^k``).
    max_in_flight_per_worker:
        Most requests dispatched to one worker before the coordinator
        waits for results (bounds re-dispatch work on a death).
    queue_limit:
        Bounded coordinator queue; submits beyond it are shed.
    reload_timeout:
        Hard ceiling on one prepare/commit handshake before the reload is
        aborted with :class:`WeightReloadError`.
    start_method:
        Multiprocessing start method. ``fork`` (default) lets workers
        inherit the model weights without pickling; the OS shares the
        pages until someone writes (nobody does — workers only read).
    """

    workers: int = 2
    worker_timeout: float = 10.0
    heartbeat_interval: float = 0.25
    poll_interval: float = 0.02
    max_worker_restarts: int = 2
    restart_backoff: float = 0.1
    max_in_flight_per_worker: int = 4
    queue_limit: int = 256
    reload_timeout: float = 60.0
    start_method: str = "fork"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.worker_timeout <= 0:
            raise ValueError(f"worker_timeout must be positive, got {self.worker_timeout}")
        if not 0 < self.heartbeat_interval < self.worker_timeout:
            raise ValueError(
                f"heartbeat_interval must be in (0, worker_timeout), "
                f"got {self.heartbeat_interval} vs {self.worker_timeout}"
            )
        if self.poll_interval <= 0:
            raise ValueError(f"poll_interval must be positive, got {self.poll_interval}")
        if self.max_worker_restarts < 0:
            raise ValueError(
                f"max_worker_restarts must be >= 0, got {self.max_worker_restarts}"
            )
        if self.restart_backoff < 0:
            raise ValueError(f"restart_backoff must be >= 0, got {self.restart_backoff}")
        if self.max_in_flight_per_worker < 1:
            raise ValueError(
                f"max_in_flight_per_worker must be >= 1, "
                f"got {self.max_in_flight_per_worker}"
            )
        if self.queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.reload_timeout <= 0:
            raise ValueError(f"reload_timeout must be positive, got {self.reload_timeout}")
        if self.start_method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"start method {self.start_method!r} unavailable on this platform "
                f"(have {multiprocessing.get_all_start_methods()})"
            )


@dataclass(frozen=True)
class PoolFaultPlan:
    """Deterministic process-level fault seam (chaos testing only).

    Faults key on ``(rank, nth serve command)`` — 1-based, counted by the
    worker itself — and fire in a rank's first incarnation only, exactly
    like :class:`~repro.training.elastic.WorkerFaultPlan`: a restarted
    worker restarts its count, so re-arming the plan would burn the whole
    restart budget on one injected fault.
    """

    kill_on_serve: Mapping[int, int] = field(default_factory=dict)
    """rank → die (``os._exit``) when its Nth serve command arrives."""
    stall_on_serve: Mapping[int, int] = field(default_factory=dict)
    """rank → stop heartbeating and hang on its Nth serve command."""

    def action_for(self, rank: int, nth_serve: int) -> str | None:
        if self.kill_on_serve.get(rank) == nth_serve:
            return "kill"
        if self.stall_on_serve.get(rank) == nth_serve:
            return "stall"
        return None


@dataclass
class PoolStats:
    """The coordinator's ledger; mirrored into ``serving.pool.*`` counters.

    ``served + rejected + shed + failed == submitted`` holds at every
    drain point — exactly-once through deaths, stalls, and re-dispatch.
    """

    submitted: int = 0
    served: int = 0
    rejected: int = 0
    shed: int = 0
    failed: int = 0
    inline_served: int = 0
    """Requests resolved on the coordinator after full pool loss."""
    redispatched: int = 0
    duplicate_results: int = 0
    worker_deaths: int = 0
    worker_restarts: int = 0
    reloads: int = 0
    served_by_worker: dict[str, int] = field(default_factory=dict)
    shed_by_reason: dict[str, int] = field(default_factory=dict)
    rejected_by_reason: dict[str, int] = field(default_factory=dict)

    @property
    def finished(self) -> int:
        return self.served + self.rejected + self.shed + self.failed

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "finished": self.finished,
            "served": self.served,
            "rejected": self.rejected,
            "shed": self.shed,
            "failed": self.failed,
            "inline_served": self.inline_served,
            "redispatched": self.redispatched,
            "duplicate_results": self.duplicate_results,
            "worker_deaths": self.worker_deaths,
            "worker_restarts": self.worker_restarts,
            "reloads": self.reloads,
            "served_by_worker": dict(sorted(self.served_by_worker.items())),
            "shed_by_reason": dict(sorted(self.shed_by_reason.items())),
            "rejected_by_reason": dict(sorted(self.rejected_by_reason.items())),
        }


class DrainGuard:
    """Latch SIGTERM/SIGINT into a ``draining`` flag instead of dying.

    The serve loop polls :attr:`draining`; on the first signal it stops
    admission, finishes (or deadline-expires) what is in flight, flushes
    telemetry, and exits 0. A second signal of the same kind still only
    sets the flag — shutdown stays graceful and idempotent.
    """

    def __init__(self, signals=(signal_module.SIGTERM, signal_module.SIGINT)) -> None:
        self.signals = tuple(signals)
        self.signum: int | None = None
        self._previous: dict[int, object] = {}

    @property
    def draining(self) -> bool:
        return self.signum is not None

    def install(self) -> "DrainGuard":
        def _flag(signum, frame):  # noqa: ARG001 - signal handler signature
            self.signum = signum

        for sig in self.signals:
            self._previous[sig] = signal_module.signal(sig, _flag)
        return self

    def restore(self) -> None:
        for sig, handler in self._previous.items():
            signal_module.signal(sig, handler)
        self._previous.clear()


def _mask_pool_worker_signals() -> None:
    """Make a decode worker deaf to SIGINT *and* SIGTERM.

    A terminal signal goes to the whole foreground process group. Only the
    coordinator may react: it stops admission and drains in-flight work —
    which the workers are still serving. Workers that died to the group
    signal would turn every graceful drain into a re-dispatch storm. The
    coordinator owns worker lifetime through the pipe (``shutdown``) and
    SIGKILL, neither of which can be masked.
    """
    signal_module.signal(signal_module.SIGINT, signal_module.SIG_IGN)
    signal_module.signal(signal_module.SIGTERM, signal_module.SIG_IGN)


def _checkpoint_base(path: str | os.PathLike) -> str:
    """Resolve a reload path to a checkpoint base (``<base>.npz/.json``).

    Accepts a bundle directory (uses its ``model`` checkpoint), an
    explicit ``.npz``/``.json`` file, or a bare base path.
    """
    location = os.fspath(path)
    if os.path.isdir(location):
        return os.path.join(location, "model")
    root, ext = os.path.splitext(location)
    if ext in (".npz", ".json"):
        return root
    return location


def _stage_checkpoint(model, path: str | os.PathLike) -> tuple[dict, str]:
    """Load ``path`` into a throwaway copy of ``model``; never touches it.

    Returns ``(state_dict, fingerprint)`` of the staged weights. Loading
    into a deep copy runs the checkpoint's full validation (digest check,
    shape check against this architecture) without perturbing the live
    weights, so a bad path or a wrong-model checkpoint fails the prepare
    phase instead of corrupting the serving fleet.
    """
    probe = copy.deepcopy(model)
    load_checkpoint(_checkpoint_base(path), probe)
    return probe.state_dict(), fingerprint_model(probe)


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _pool_worker_main(
    rank: int,
    conn,
    model,
    encoder_vocab: Vocabulary,
    decoder_vocab: Vocabulary,
    policy: AdmissionPolicy | None,
    service_config: ServiceConfig | None,
    engine_config: EngineConfig | None,
    cache_size: int,
    heartbeat_interval: float,
    fault_plan: PoolFaultPlan | None,
) -> None:
    """Decode worker loop: one engine, one pipe, one heartbeat thread."""
    _mask_pool_worker_signals()
    send_lock = threading.Lock()
    stalled = threading.Event()

    def _send(message) -> bool:
        try:
            with send_lock:
                conn.send(message)
            return True
        except (BrokenPipeError, OSError):
            return False

    def _heartbeat() -> None:
        while not stalled.is_set():
            if not _send(("hb", rank, process_rss_bytes())):
                return
            stalled.wait(heartbeat_interval)

    heartbeat_thread = threading.Thread(
        target=_heartbeat, name=f"serving-hb-{rank}", daemon=True
    )
    heartbeat_thread.start()

    cache = (
        EncoderStateCache(cache_size, telemetry=Telemetry([])) if cache_size else None
    )
    service = InferenceService(
        model,
        encoder_vocab,
        decoder_vocab,
        policy=policy,
        config=service_config,
        clock=Clock(),
        telemetry=Telemetry([]),
        encoder_cache=cache,
    )
    engine = ContinuousBatchingEngine(service, engine_config)
    fingerprint = fingerprint_model(model)
    staged: tuple[int, dict, str] | None = None
    commit_generation: int | None = None
    serves = 0

    try:
        _send(("hello", rank, os.getpid(), fingerprint))
        while True:
            # Block only when idle; with work in flight just sweep the pipe.
            busy = bool(engine.in_flight or engine.queue_depth)
            timeout = 0.0 if busy else 0.05
            while conn.poll(timeout):
                timeout = 0.0
                message = conn.recv()
                kind = message[0]
                if kind == "shutdown":
                    return
                if kind == "serve":
                    request: GenerationRequest = message[1]
                    serves += 1
                    action = (
                        fault_plan.action_for(rank, serves) if fault_plan else None
                    )
                    if action == "kill":
                        os._exit(_KILL_EXIT_CODE)
                    if action == "stall":
                        # Simulated hang: heartbeats stop, the process
                        # lingers; the supervisor must SIGKILL on timeout
                        # and re-dispatch everything this worker held.
                        stalled.set()
                        time.sleep(_STALL_SECONDS)
                        continue
                    immediate = engine.submit(request)
                    if immediate is not None:
                        _send(("result", rank, immediate, fingerprint))
                elif kind == "reload_prepare":
                    generation, path = message[1], message[2]
                    try:
                        state, staged_fp = _stage_checkpoint(model, path)
                        staged = (generation, state, staged_fp)
                        _send(("reload_staged", rank, generation, staged_fp))
                    except Exception as error:  # noqa: BLE001 - report, don't die
                        staged = None
                        _send(("reload_failed", rank, generation, repr(error)))
                elif kind == "reload_commit":
                    commit_generation = message[1]
                elif kind == "reload_abort":
                    if staged is not None and staged[0] == message[1]:
                        staged = None
                    commit_generation = None
            if engine.in_flight or engine.queue_depth:
                for outcome in engine.step():
                    _send(("result", rank, outcome, fingerprint))
            elif (
                commit_generation is not None
                and staged is not None
                and staged[0] == commit_generation
            ):
                # Swap only with an empty frontier: no request ever decodes
                # under a mix of old and new weights.
                model.load_state_dict(staged[1])
                fingerprint = staged[2]
                if cache is not None:
                    cache.refresh(model)
                staged = None
                commit_generation = None
                _send(("reload_done", rank, fingerprint))
    except (EOFError, KeyboardInterrupt):
        return
    except Exception:  # noqa: BLE001 - a worker must report, not vanish
        _send(("error", rank, traceback.format_exc()))
        os._exit(1)
    finally:
        stalled.set()


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
@dataclass
class _PoolWorkerHandle:
    rank: int
    process: object | None = None
    conn: object | None = None
    last_heartbeat: float = 0.0
    rss_bytes: int = 0
    restarts_used: int = 0
    status: str = "live"  # live | backoff | retired
    backoff_until: float = 0.0
    fingerprint: str | None = None
    in_flight: dict[str, int] = field(default_factory=dict)
    """request_id → submission sequence currently dispatched to this rank."""
    staged_generation: int | None = None
    staged_fingerprint: str | None = None
    staged_error: str | None = None
    committed: bool = False

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None


@dataclass
class _Ticket:
    request: GenerationRequest
    encoded: EncodedExample
    seq: int


class ServingPool:
    """Coordinator for the multi-process decode pool.

    The API mirrors :class:`~repro.serving.engine.ContinuousBatchingEngine`:
    ``submit`` returns an outcome only when the request never entered the
    pool (rejected, shed), ``pump`` runs one supervision/dispatch pass, and
    ``drain`` pumps until every accepted request has resolved. Call
    :meth:`shutdown` when done (idempotent; never leaves orphans).
    """

    def __init__(
        self,
        model,
        encoder_vocab: Vocabulary,
        decoder_vocab: Vocabulary,
        policy: AdmissionPolicy | None = None,
        service_config: ServiceConfig | None = None,
        engine_config: EngineConfig | None = None,
        config: PoolConfig | None = None,
        telemetry=None,
        cache_size: int = 0,
        fault_plan: PoolFaultPlan | None = None,
    ) -> None:
        self.model = model
        self.encoder_vocab = encoder_vocab
        self.decoder_vocab = decoder_vocab
        self.policy = policy
        self.service_config = service_config
        self.engine_config = engine_config
        self.config = config if config is not None else PoolConfig()
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self.cache_size = cache_size
        self.fault_plan = fault_plan
        self.stats = PoolStats()
        self.validator = RequestValidator(encoder_vocab, decoder_vocab, policy)
        self.fingerprint = fingerprint_model(model)
        self._handles: dict[int, _PoolWorkerHandle] = {}
        self._ctx = None
        self._pending: deque[_Ticket] = deque()
        self._tickets_by_id: dict[str, _Ticket] = {}
        self._resolved: dict[str, str] = {}
        """request_id → fingerprint the response was served under."""
        self._outbox: list[RequestOutcome] = []
        self._seq = 0
        self._rr = 0
        self._draining = False
        self._reloading = False
        self._generation = 0
        self._inline_engine: ContinuousBatchingEngine | None = None
        self._inline_cache: EncoderStateCache | None = None
        self._inline_announced = False
        self._last_gauges = 0.0

    # ------------------------------------------------------------------
    # Pool management
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Fork the workers; idempotent (submit/drain call it lazily)."""
        if self._handles:
            return
        self._ctx = multiprocessing.get_context(self.config.start_method)
        for rank in range(self.config.workers):
            self._handles[rank] = _PoolWorkerHandle(rank=rank)
            self._spawn_worker(self._handles[rank])

    def _spawn_worker(self, handle: _PoolWorkerHandle) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        # Injected faults fire in a rank's first incarnation only — same
        # rationale as the elastic trainer's WorkerFaultPlan.
        fault_plan = self.fault_plan if handle.restarts_used == 0 else None
        process = self._ctx.Process(
            target=_pool_worker_main,
            args=(
                handle.rank,
                child_conn,
                self.model,
                self.encoder_vocab,
                self.decoder_vocab,
                self.policy,
                self.service_config,
                self.engine_config,
                self.cache_size,
                self.config.heartbeat_interval,
                fault_plan,
            ),
            name=f"serving-worker-{handle.rank}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.last_heartbeat = time.monotonic()
        handle.status = "live"
        handle.fingerprint = None
        handle.in_flight = {}

    def _kill_worker_process(self, handle: _PoolWorkerHandle) -> None:
        if handle.process is not None:
            if handle.process.is_alive():
                handle.process.kill()
            handle.process.join(timeout=5.0)
            handle.process = None
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:
                pass
            handle.conn = None

    def shutdown(self) -> None:
        """Stop and reap every worker; idempotent, never leaves orphans."""
        for handle in self._handles.values():
            if handle.conn is not None:
                try:
                    handle.conn.send(("shutdown",))
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + 5.0
        for handle in self._handles.values():
            if handle.process is not None:
                handle.process.join(timeout=max(0.1, deadline - time.monotonic()))
            self._kill_worker_process(handle)
        self._handles.clear()

    def live_worker_pids(self) -> list[int]:
        """PIDs of workers still running (empty after a clean shutdown)."""
        return [
            handle.pid
            for handle in self._handles.values()
            if handle.process is not None and handle.process.is_alive()
        ]

    def _live_handles(self) -> list[_PoolWorkerHandle]:
        return [h for h in self._handles.values() if h.status == "live"]

    # ------------------------------------------------------------------
    # Submission / drain lifecycle
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    @property
    def in_flight(self) -> int:
        return sum(len(h.in_flight) for h in self._handles.values())

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Stop admission; everything already accepted still resolves."""
        if self._draining:
            return
        self._draining = True
        self.telemetry.run_marker(
            "pool_drain", pending=self.queue_depth, in_flight=self.in_flight
        )

    def submit(self, request: GenerationRequest) -> RequestOutcome | None:
        """Admit into the pool queue; an outcome is returned only when the
        request never entered it (rejected, shed, or draining)."""
        self.start()
        self.stats.submitted += 1
        self.telemetry.counter("serving.pool.submitted")
        if self._draining:
            return self._shed(request, "draining")
        try:
            encoded = self.validator.admit(request)
        except RejectedRequest as error:
            self.stats.rejected += 1
            self.stats.rejected_by_reason[error.reason] = (
                self.stats.rejected_by_reason.get(error.reason, 0) + 1
            )
            self.telemetry.counter("serving.pool.rejected")
            self.telemetry.counter(f"serving.pool.rejected.{error.reason}")
            return RequestOutcome(
                request.request_id, "rejected", error=type(error).__name__,
                reason=error.reason,
            )
        if self.queue_depth >= self.config.queue_limit:
            return self._shed(request, "queue_full")
        self._pending.append(_Ticket(request, encoded, self._seq))
        self._seq += 1
        return None

    def _shed(self, request: GenerationRequest, reason: str) -> RequestOutcome:
        self.stats.shed += 1
        self.stats.shed_by_reason[reason] = self.stats.shed_by_reason.get(reason, 0) + 1
        self.telemetry.counter("serving.pool.shed")
        self.telemetry.counter(f"serving.pool.shed.{reason}")
        return RequestOutcome(
            request.request_id, "shed", error="RequestShed", reason=reason
        )

    def pump(self) -> list[RequestOutcome]:
        """One supervision + dispatch + collection pass."""
        self.start()
        self._supervise()
        self._collect()
        self._dispatch()
        self._gauges()
        outcomes, self._outbox = self._outbox, []
        return outcomes

    def drain(self) -> list[RequestOutcome]:
        """Pump until every accepted request has resolved."""
        outcomes: list[RequestOutcome] = []
        while self._pending or self.in_flight:
            outcomes.extend(self.pump())
        outcomes.extend(self.pump())  # flush results that raced the last pass
        return outcomes

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def _supervise(self) -> None:
        now = time.monotonic()
        for handle in list(self._handles.values()):
            if handle.status == "live":
                if handle.process is None or not handle.process.is_alive():
                    self._fail_worker(handle, "process_died")
                elif now - handle.last_heartbeat > self.config.worker_timeout:
                    self._fail_worker(handle, "heartbeat_timeout")
            elif (
                handle.status == "backoff"
                and now >= handle.backoff_until
                and not self._reloading
                # During a reload, respawns wait for the commit: a fork
                # must inherit the committed weights, never a mix.
            ):
                self._spawn_worker(handle)
                self.telemetry.run_marker("pool_worker_restarted", rank=handle.rank)

    def _fail_worker(self, handle: _PoolWorkerHandle, cause: str) -> None:
        """Salvage readable results, then re-queue what the rank held."""
        self.stats.worker_deaths += 1
        self.telemetry.counter("serving.pool.worker_deaths")
        self.telemetry.run_marker("pool_worker_dead", rank=handle.rank, cause=cause)
        # A worker can die with results already written to the pipe; those
        # are real completions, not re-dispatch work.
        if handle.conn is not None:
            try:
                while handle.conn.poll():
                    message = handle.conn.recv()
                    if message[0] == "result":
                        self._record(message[2], message[3], handle.rank)
            except (EOFError, OSError):
                pass
        self._kill_worker_process(handle)
        unresolved = sorted(
            (
                (seq, request_id)
                for request_id, seq in handle.in_flight.items()
                if request_id not in self._resolved
            ),
        )
        handle.in_flight = {}
        tickets = []
        for _, request_id in unresolved:
            ticket = self._tickets_by_id.pop(request_id, None)
            if ticket is not None:
                tickets.append(ticket)
        if tickets:
            self.stats.redispatched += len(tickets)
            self.telemetry.counter("serving.pool.redispatched", len(tickets))
            # Back to the FRONT of the queue, original submission order.
            self._pending.extendleft(reversed(tickets))
        if handle.restarts_used >= self.config.max_worker_restarts:
            handle.status = "retired"
            survivors = sorted(
                h.rank for h in self._handles.values() if h.status != "retired"
            )
            self.telemetry.run_marker("pool_degraded", survivors=survivors)
            return
        handle.restarts_used += 1
        self.stats.worker_restarts += 1
        backoff = self.config.restart_backoff * (2 ** (handle.restarts_used - 1))
        handle.status = "backoff"
        handle.backoff_until = time.monotonic() + backoff
        self.telemetry.counter("serving.pool.worker_restarts")

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def _collect(self) -> None:
        conns = {
            handle.conn: handle
            for handle in self._live_handles()
            if handle.conn is not None
        }
        if not conns:
            healing = any(h.status == "backoff" for h in self._handles.values())
            if healing and (self._pending or self.in_flight):
                time.sleep(self.config.poll_interval)
            return
        ready = mp_connection.wait(list(conns), timeout=self.config.poll_interval)
        for conn in ready:
            handle = conns[conn]
            while True:
                try:
                    if not conn.poll():
                        break
                    message = conn.recv()
                except (EOFError, OSError):
                    break  # liveness check next pass reaps the rank
                self._handle_message(handle, message)

    def _handle_message(self, handle: _PoolWorkerHandle, message) -> None:
        kind = message[0]
        handle.last_heartbeat = time.monotonic()
        if kind == "hb":
            handle.rss_bytes = int(message[2])
        elif kind == "hello":
            handle.fingerprint = message[3]
        elif kind == "result":
            _, rank, outcome, fingerprint = message
            handle.in_flight.pop(outcome.request_id, None)
            self._record(outcome, fingerprint, rank)
        elif kind == "reload_staged":
            handle.staged_generation = message[2]
            handle.staged_fingerprint = message[3]
        elif kind == "reload_failed":
            handle.staged_generation = message[2]
            handle.staged_fingerprint = None
            handle.staged_error = message[3]
        elif kind == "reload_done":
            handle.fingerprint = message[2]
            handle.committed = True
        elif kind == "error":
            self.telemetry.log(
                f"[serving.pool] worker {handle.rank} raised:\n{message[2]}"
            )
            self._fail_worker(handle, "exception")

    def _record(self, outcome: RequestOutcome, fingerprint: str, rank: int) -> None:
        """Exactly-once resolution, idempotent by request id."""
        request_id = outcome.request_id
        if request_id in self._resolved:
            self.stats.duplicate_results += 1
            self.telemetry.counter("serving.pool.duplicate_result")
            return
        self._resolved[request_id] = fingerprint
        self._tickets_by_id.pop(request_id, None)
        # Stamp the weight generation onto the outcome: every response is
        # attributable to exactly one fingerprint, never a mix.
        self._outbox.append(replace(outcome, fingerprint=fingerprint))
        label = "inline" if rank < 0 else f"worker{rank}"
        if outcome.status == "served":
            self.stats.served += 1
            self.stats.served_by_worker[label] = (
                self.stats.served_by_worker.get(label, 0) + 1
            )
            self.telemetry.counter("serving.pool.served")
        elif outcome.status == "rejected":
            self.stats.rejected += 1
            reason = outcome.reason or "unknown"
            self.stats.rejected_by_reason[reason] = (
                self.stats.rejected_by_reason.get(reason, 0) + 1
            )
            self.telemetry.counter("serving.pool.rejected")
        elif outcome.status == "shed":
            self.stats.shed += 1
            reason = outcome.reason or "unknown"
            self.stats.shed_by_reason[reason] = (
                self.stats.shed_by_reason.get(reason, 0) + 1
            )
            self.telemetry.counter("serving.pool.shed")
        else:
            self.stats.failed += 1
            self.telemetry.counter("serving.pool.failed")

    def result_fingerprint(self, request_id: str) -> str | None:
        """The weight fingerprint a resolved request was served under."""
        return self._resolved.get(request_id)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        if not self._pending:
            return
        if self._reloading:
            return  # requests wait out the handshake; nothing is lost
        live = sorted(self._live_handles(), key=lambda h: h.rank)
        if not live:
            if any(h.status == "backoff" for h in self._handles.values()):
                return  # restarts are due shortly; the pool will heal
            self._serve_inline()
            return
        capacity = self.config.max_in_flight_per_worker
        candidates = [h for h in live if len(h.in_flight) < capacity]
        while self._pending and candidates:
            handle = candidates[self._rr % len(candidates)]
            ticket = self._pending.popleft()
            try:
                handle.conn.send(("serve", ticket.request))
            except (BrokenPipeError, OSError):
                self._pending.appendleft(ticket)
                return  # reaped next supervision pass, then re-dispatched
            handle.in_flight[ticket.request.request_id] = ticket.seq
            self._tickets_by_id[ticket.request.request_id] = ticket
            self._rr += 1
            if len(handle.in_flight) >= capacity:
                candidates = [h for h in candidates if h is not handle]

    def _serve_inline(self) -> None:
        """Degrade, don't refuse: the coordinator decodes the backlog."""
        if not self._inline_announced:
            self._inline_announced = True
            self.telemetry.run_marker("pool_inline_fallback")
            self.telemetry.log(
                "[serving.pool] no live workers remain; decoding inline"
            )
        engine = self._inline()
        tickets, self._pending = list(self._pending), deque()
        for ticket in tickets:
            immediate = engine.submit(ticket.request)
            if immediate is not None:
                self._note_inline(immediate)
        for outcome in engine.drain():
            self._note_inline(outcome)

    def _note_inline(self, outcome: RequestOutcome) -> None:
        self.stats.inline_served += 1
        self.telemetry.counter("serving.pool.inline")
        self._record(outcome, self.fingerprint, rank=-1)

    def _inline(self) -> ContinuousBatchingEngine:
        if self._inline_engine is None:
            self._inline_cache = (
                EncoderStateCache(self.cache_size, telemetry=self.telemetry)
                if self.cache_size
                else None
            )
            service = InferenceService(
                self.model,
                self.encoder_vocab,
                self.decoder_vocab,
                policy=self.policy,
                config=self.service_config,
                clock=Clock(),
                telemetry=self.telemetry,
                encoder_cache=self._inline_cache,
            )
            self._inline_engine = ContinuousBatchingEngine(service, self.engine_config)
        return self._inline_engine

    # ------------------------------------------------------------------
    # Hot reload
    # ------------------------------------------------------------------
    def reload_weights(self, path: str | os.PathLike) -> str:
        """Prepare/commit a checkpoint swap across the fleet; returns the
        new fingerprint. Raises :class:`WeightReloadError` (and keeps the
        old weights serving everywhere) when any survivor cannot stage the
        checkpoint or stages different bytes."""
        self.start()
        try:
            staged_state, new_fp = _stage_checkpoint(self.model, path)
        except Exception as error:
            raise WeightReloadError(
                f"cannot stage checkpoint {os.fspath(path)!r}: {error}"
            ) from error
        generation = self._generation + 1
        deadline = time.monotonic() + self.config.reload_timeout
        self._reloading = True
        try:
            targets = self._begin_phase(generation)
            for handle in targets:
                self._send_or_fail(handle, ("reload_prepare", generation, path))
            self._await_phase(
                generation, deadline,
                lambda h: getattr(h, "staged_generation", None) == generation,
            )
            survivors = [
                h for h in self._live_handles()
                if getattr(h, "staged_generation", None) == generation
            ]
            mismatched = [
                h for h in survivors if getattr(h, "staged_fingerprint", None) != new_fp
            ]
            if mismatched:
                details = "; ".join(
                    f"rank {h.rank}: "
                    + (
                        getattr(h, "staged_error", None)
                        or f"fingerprint {str(getattr(h, 'staged_fingerprint', None))[:12]}…"
                    )
                    for h in mismatched
                )
                for handle in survivors:
                    self._send_or_fail(handle, ("reload_abort", generation))
                raise WeightReloadError(
                    f"reload aborted, old weights keep serving — staging "
                    f"diverged from coordinator fingerprint {new_fp[:12]}…: {details}"
                )
            for handle in survivors:
                handle.committed = False
                self._send_or_fail(handle, ("reload_commit", generation))
            self._await_phase(
                generation, deadline, lambda h: getattr(h, "committed", False)
            )
            # Every surviving worker swapped; now the coordinator (and any
            # worker forked from it later) follows.
            self.model.load_state_dict(staged_state)
            self.fingerprint = new_fp
            if self._inline_cache is not None:
                self._inline_cache.refresh(self.model)
            self._generation = generation
            self.stats.reloads += 1
            self.telemetry.counter("serving.pool.reloads")
            self.telemetry.run_marker(
                "pool_reload", generation=generation, fingerprint=new_fp[:16]
            )
            return new_fp
        finally:
            self._reloading = False

    def _begin_phase(self, generation: int) -> list[_PoolWorkerHandle]:
        targets = self._live_handles()
        for handle in targets:
            handle.staged_generation = None
            handle.staged_fingerprint = None
            handle.staged_error = None
            handle.committed = False
        return targets

    def _send_or_fail(self, handle: _PoolWorkerHandle, message) -> None:
        if handle.conn is None:
            return
        try:
            handle.conn.send(message)
        except (BrokenPipeError, OSError):
            pass  # the next supervision pass reaps it

    def _await_phase(self, generation: int, deadline: float, done) -> None:
        """Wait until every live worker satisfies ``done`` (deaths shrink
        the quorum: the commit only ever needs the survivors)."""
        while True:
            self._supervise()
            self._collect()
            live = self._live_handles()
            if all(done(h) for h in live):
                return
            if time.monotonic() > deadline:
                raise WeightReloadError(
                    f"reload generation {generation} timed out after "
                    f"{self.config.reload_timeout}s; old weights keep serving"
                )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _gauges(self) -> None:
        now = time.monotonic()
        if now - self._last_gauges < _GAUGE_INTERVAL:
            return
        self._last_gauges = now
        live = self._live_handles()
        emit_worker_pool(
            self.telemetry,
            "serving.pool",
            {h.rank: now - h.last_heartbeat for h in live},
            world_size=len(live),
            rss_bytes={h.rank: h.rss_bytes for h in live if h.rss_bytes > 0},
        )
        self.telemetry.gauge("serving.pool.queue_depth", float(self.queue_depth))
        self.telemetry.gauge("serving.pool.in_flight", float(self.in_flight))

    def report(self) -> dict:
        """The coordinator ledger plus fleet state, for the CLI footer."""
        self.telemetry.flush_histograms()
        payload = self.stats.as_dict()
        payload["workers"] = {
            str(rank): {
                "status": handle.status,
                "restarts_used": handle.restarts_used,
                "in_flight": len(handle.in_flight),
            }
            for rank, handle in sorted(self._handles.items())
        }
        payload["fingerprint"] = self.fingerprint[:16]
        payload["generation"] = self._generation
        payload["draining"] = self._draining
        return payload
