"""Hardened inference serving around the ACNN decode path.

``repro.serving`` is the production-shaped layer between raw text traffic
and the decode engines: typed request admission, per-request deadlines
threaded through encode/decode, a degradation ladder (beam → beam-1 →
greedy → truncated-greedy), a circuit breaker with jittered retry/backoff,
bounded-queue micro-batching with load shedding, a step-level
continuous-batching engine (:mod:`repro.serving.engine`) with an LRU
encoder-state cache (:mod:`repro.serving.cache`), a supervised
multi-process decode pool with exactly-once re-dispatch, graceful drain
and prepare/commit hot weight reload (:mod:`repro.serving.pool`), and a
deterministic fault-injection seam for chaos testing. Everything reports
through the :mod:`repro.observability` telemetry hub.

Quick start::

    from repro.serving import GenerationRequest, InferenceService, MicroBatcher

    service = InferenceService(model, encoder_vocab, decoder_vocab)
    result = service.handle(GenerationRequest("the tower was built in 1889 ."))
    print(result.question, result.rung)

See docs/architecture.md, "Serving & graceful degradation".
"""

from repro.serving.batcher import MicroBatcher
from repro.serving.breaker import BreakerConfig, CircuitBreaker, RetryPolicy
from repro.serving.cache import (
    CachedEncoderModel,
    CacheStats,
    EncoderStateCache,
    fingerprint_model,
    pad_batch,
)
from repro.serving.deadline import Clock, Deadline, ManualClock
from repro.serving.errors import (
    BreakerOpen,
    DeadlineExceeded,
    RejectedRequest,
    RequestFailed,
    RequestShed,
    ServingError,
    is_retryable,
)
from repro.serving.engine import ContinuousBatchingEngine, EngineConfig, EngineStats
from repro.serving.faults import (
    FaultInjectingModel,
    FaultInjector,
    FaultPlan,
    InjectedFault,
)
from repro.serving.ladder import RUNG_NAMES, Rung, build_ladder, run_rung
from repro.serving.pool import (
    DrainGuard,
    PoolConfig,
    PoolFaultPlan,
    PoolStats,
    ServingPool,
    WeightReloadError,
)
from repro.serving.requests import (
    AdmissionPolicy,
    GenerationRequest,
    GenerationResult,
    RequestValidator,
)
from repro.serving.service import (
    InferenceService,
    RequestOutcome,
    ServiceConfig,
    ServiceStats,
)

__all__ = [
    "MicroBatcher",
    "BreakerConfig",
    "CircuitBreaker",
    "RetryPolicy",
    "CachedEncoderModel",
    "CacheStats",
    "EncoderStateCache",
    "fingerprint_model",
    "pad_batch",
    "ContinuousBatchingEngine",
    "EngineConfig",
    "EngineStats",
    "Clock",
    "Deadline",
    "ManualClock",
    "BreakerOpen",
    "DeadlineExceeded",
    "RejectedRequest",
    "RequestFailed",
    "RequestShed",
    "ServingError",
    "is_retryable",
    "FaultInjectingModel",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "RUNG_NAMES",
    "Rung",
    "build_ladder",
    "run_rung",
    "DrainGuard",
    "PoolConfig",
    "PoolFaultPlan",
    "PoolStats",
    "ServingPool",
    "WeightReloadError",
    "AdmissionPolicy",
    "GenerationRequest",
    "GenerationResult",
    "RequestValidator",
    "InferenceService",
    "RequestOutcome",
    "ServiceConfig",
    "ServiceStats",
]
