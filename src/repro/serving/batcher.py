"""Bounded-queue micro-batching over the inference service.

The batcher aggregates admitted requests into one bounded FIFO queue and
flushes them in groups through the batch-parallel beam engine — the
throughput path — while keeping the service's fault story intact:

- **load shedding**: a ``submit`` against a full queue is shed (typed
  outcome, ``serving.shed.queue_full`` counter) instead of growing an
  unbounded backlog;
- **fault isolation**: when a batched decode fails, the group falls back
  to the per-request path, where each request runs its own degradation
  ladder — one poison request can no longer take down its batchmates.

The core stays synchronous: ``submit`` enqueues (or rejects/sheds) and
``pump``/``drain`` serve, so tests and the chaos harness control exactly
when work happens.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.data.batching import collate
from repro.data.dataset import EncodedExample
from repro.data.vocabulary import PAD_ID
from repro.decoding.batched_beam import batched_beam_decode
from repro.serving.deadline import Deadline
from repro.serving.errors import BreakerOpen, RejectedRequest, RequestFailed
from repro.serving.ladder import build_ladder
from repro.serving.requests import GenerationRequest
from repro.serving.service import InferenceService, RequestOutcome

__all__ = ["MicroBatcher"]


@dataclass
class _Pending:
    request: GenerationRequest
    encoded: EncodedExample
    deadline: Deadline
    enqueued_at: float


class MicroBatcher:
    """Aggregates requests for the batched beam engine, with shedding."""

    def __init__(
        self,
        service: InferenceService,
        max_batch: int = 8,
        queue_limit: int = 32,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.service = service
        self.max_batch = max_batch
        self.queue_limit = queue_limit
        self._queue: deque[_Pending] = deque()

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self._queue)

    def _gauge_depth(self) -> None:
        self.service.telemetry.gauge("serving.queue.depth", float(self.depth))

    def submit(self, request: GenerationRequest) -> RequestOutcome | None:
        """Admit into the queue; returns an outcome only when not enqueued.

        ``None`` means the request is pending (serve it with ``pump`` /
        ``drain``); a returned outcome is a rejection (failed admission)
        or a shed (queue full) that never entered the queue.
        """
        try:
            encoded = self.service.admit(request)
        except RejectedRequest as error:
            return RequestOutcome(
                request.request_id, "rejected", error=type(error).__name__,
                reason=error.reason,
            )
        if self.depth >= self.queue_limit:
            self.service.note_shed("queue_full")
            return RequestOutcome(
                request.request_id, "shed", error="RequestShed", reason="queue_full"
            )
        self._queue.append(
            _Pending(request, encoded, self.service.start_deadline(request),
                     self.service.clock.now())
        )
        self._gauge_depth()
        return None

    # ------------------------------------------------------------------
    def pump(self) -> list[RequestOutcome]:
        """Serve one micro-batch from the head of the queue."""
        if not self._queue:
            return []
        group = [self._queue.popleft() for _ in range(min(self.max_batch, self.depth))]
        self._gauge_depth()
        outcomes = self._serve_group(group)
        return outcomes

    def drain(self) -> list[RequestOutcome]:
        """Pump until the queue is empty."""
        outcomes: list[RequestOutcome] = []
        while self._queue:
            outcomes.extend(self.pump())
        return outcomes

    # ------------------------------------------------------------------
    def _serve_group(self, group: list[_Pending]) -> list[RequestOutcome]:
        homogeneous = len(group) > 1 and all(
            entry.request.beam_size == group[0].request.beam_size
            and entry.request.max_length == group[0].request.max_length
            for entry in group
        )
        if homogeneous and self.service.breaker.state == "closed":
            fast = self._try_batched(group)
            if fast is not None:
                return fast
            self.service.telemetry.counter("serving.batch_fallback")
        return [self._serve_one(entry) for entry in group]

    def _try_batched(self, group: list[_Pending]) -> list[RequestOutcome] | None:
        """One batched top-rung decode for the whole group; None on failure.

        The group shares the earliest member deadline (a batch is only as
        patient as its most urgent request). Any engine failure abandons
        the fast path — the per-request ladder takes over, and that path
        owns the breaker's failure accounting so faults are counted once.
        """
        service = self.service
        first = group[0].request
        batch = collate([entry.encoded for entry in group], pad_id=PAD_ID)
        deadline = min(group, key=lambda entry: entry.deadline.expires_at).deadline
        top_rung = build_ladder(
            first.beam_size, first.max_length, service.config.truncated_length
        )[0]
        if service.injector is not None:
            service.injector.begin_request()
        try:
            hypotheses = batched_beam_decode(
                service.model,
                batch,
                beam_size=first.beam_size,
                max_length=first.max_length,
                length_penalty=service.config.length_penalty,
                telemetry=service.telemetry,
                deadline=deadline,
            )
        except Exception:  # noqa: BLE001 - any engine fault → per-request path
            return None
        outcomes: list[RequestOutcome] = []
        for entry, hypothesis in zip(group, hypotheses):
            try:
                result = service._build_result(
                    entry.request, entry.encoded, hypothesis, top_rung,
                    attempts=1, started=entry.enqueued_at,
                )
            except Exception as error:  # noqa: BLE001 - per-request poison
                service._note_failed()
                outcomes.append(
                    RequestOutcome(
                        entry.request.request_id, "failed",
                        error=type(error).__name__,
                    )
                )
                continue
            service.breaker.record_success()
            service._note_served(result)
            outcomes.append(
                RequestOutcome(entry.request.request_id, "served", result=result)
            )
        return outcomes

    def _serve_one(self, entry: _Pending) -> RequestOutcome:
        service = self.service
        try:
            result = service.handle_admitted(entry.request, entry.encoded, entry.deadline)
        except BreakerOpen as error:
            return RequestOutcome(
                entry.request.request_id, "shed", error=type(error).__name__,
                reason="breaker_open",
            )
        except RequestFailed as error:
            return RequestOutcome(
                entry.request.request_id, "failed",
                error=type(error.cause).__name__ if error.cause else "unknown",
            )
        return RequestOutcome(entry.request.request_id, "served", result=result)
