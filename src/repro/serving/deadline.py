"""Per-request deadlines over an injectable clock.

A :class:`Deadline` is the cooperative time budget the serving layer
threads through encode/decode: the beam engine calls ``check()`` once per
step and the typed :class:`~repro.serving.errors.DeadlineExceeded`
propagates the moment the budget runs out, without any thread or signal
machinery (the core stays synchronous).

Clocks are injectable so the chaos suite is deterministic:
:class:`ManualClock` only moves when something advances it (the fault
injector's "slow step", the retry policy's backoff sleep), which makes
deadline expiry — normally a wall-clock race — a reproducible, seedable
event.
"""

from __future__ import annotations

import time

from repro.serving.errors import DeadlineExceeded

__all__ = ["Clock", "ManualClock", "Deadline"]


class Clock:
    """Real time: ``monotonic`` now, genuine ``sleep``."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class ManualClock(Clock):
    """A clock that moves only when told to — determinism for chaos tests.

    ``sleep`` advances instead of blocking, so backoff delays and injected
    slow steps consume *simulated* time and every run with the same seed
    replays identically.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance a clock backwards ({seconds})")
        self._now += float(seconds)


class Deadline:
    """An absolute expiry instant with cooperative checks.

    Decoders only need the ``check()`` method; they hold no import on this
    module (duck-typed), so the decoding package stays independent of the
    serving layer.
    """

    def __init__(self, budget_seconds: float, clock: Clock | None = None) -> None:
        if budget_seconds <= 0:
            raise ValueError(f"deadline budget must be positive, got {budget_seconds}")
        self.clock = clock if clock is not None else Clock()
        self.budget_seconds = float(budget_seconds)
        self.expires_at = self.clock.now() + self.budget_seconds

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - self.clock.now()

    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is exhausted."""
        remaining = self.remaining()
        if remaining <= 0:
            raise DeadlineExceeded(self.budget_seconds, -remaining)
