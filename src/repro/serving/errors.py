"""Typed errors of the serving layer.

Every failure mode a request can hit has its own class, each carrying the
machine-readable fields the accounting and the chaos tests assert on. The
split that matters operationally is ``retryable``:

- retryable faults (injected faults, NaN decode steps, transient engine
  errors) are worth a jittered-backoff retry and count against the
  circuit breaker;
- non-retryable ones are *poison* — the same request would fail the same
  way again — and fail fast without burning retry budget.
"""

from __future__ import annotations

__all__ = [
    "ServingError",
    "RejectedRequest",
    "DeadlineExceeded",
    "BreakerOpen",
    "RequestShed",
    "RequestFailed",
    "is_retryable",
]


class ServingError(RuntimeError):
    """Base class for every typed serving-layer error."""


class RejectedRequest(ServingError):
    """The request failed admission and never reached the engine.

    ``reason`` is a stable machine-readable code (``empty``, ``too_long``,
    ``unk_density``, ``invalid_type``, ``bad_parameters``) used by the
    per-reason rejection counters.
    """

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(f"rejected ({reason}): {message}")
        self.reason = reason


class DeadlineExceeded(ServingError):
    """A cooperative deadline check found the request's budget exhausted."""

    def __init__(self, budget_seconds: float, overrun_seconds: float) -> None:
        super().__init__(
            f"deadline of {budget_seconds:.3f}s exceeded "
            f"by {max(0.0, overrun_seconds):.3f}s"
        )
        self.budget_seconds = budget_seconds
        self.overrun_seconds = overrun_seconds


class BreakerOpen(ServingError):
    """The circuit breaker is open: the engine is failing, fail fast."""

    def __init__(self, retry_after_seconds: float) -> None:
        super().__init__(
            f"circuit breaker open; retry after {max(0.0, retry_after_seconds):.3f}s"
        )
        self.retry_after_seconds = retry_after_seconds


class RequestShed(ServingError):
    """Load shedding: the bounded request queue is full."""

    def __init__(self, queue_limit: int) -> None:
        super().__init__(f"request shed: queue full ({queue_limit} pending)")
        self.queue_limit = queue_limit


class RequestFailed(ServingError):
    """Every rung (and every retry) failed; carries the final cause."""

    def __init__(self, cause: BaseException, attempts: int) -> None:
        super().__init__(
            f"request failed after {attempts} attempt(s): "
            f"{type(cause).__name__}: {cause}"
        )
        self.cause = cause
        self.attempts = attempts


def is_retryable(error: BaseException) -> bool:
    """Whether a fault is transient (retry/degrade) or poison (fail fast).

    Explicitly marked faults win (``error.retryable``); otherwise NaN
    decode steps (:class:`~repro.models.base.NonFiniteLogits`) count as
    transient — diverged weights and injected chaos look identical from
    here — while everything else (ValueError, IndexError, ...) is poison:
    deterministic for the same request, so retrying cannot help.
    """
    from repro.models.base import NonFiniteLogits

    marked = getattr(error, "retryable", None)
    if marked is not None:
        return bool(marked)
    return isinstance(error, NonFiniteLogits)
