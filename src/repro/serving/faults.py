"""Deterministic fault injection at the encode/decode boundaries.

The chaos suite needs the engine to fail in every way production fails —
NaN logits, stalls, outright exceptions — on demand and *reproducibly*.
:class:`FaultInjectingModel` wraps any
:class:`~repro.models.base.QuestionGenerator` and perturbs exactly two
boundaries (the encode call and each ``step_log_probs``), driven by a
seeded RNG with a fixed draw order per boundary, so the same
:class:`FaultPlan` replays the same faults at the same steps every run.

Stalls advance the injector's clock: with a
:class:`~repro.serving.deadline.ManualClock` shared with the service, a
"slow step" consumes simulated deadline budget without any real sleeping,
which is what makes deadline-expiry chaos tests deterministic and fast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serving.deadline import Clock
from repro.serving.errors import ServingError

__all__ = ["FaultPlan", "FaultInjector", "FaultInjectingModel", "InjectedFault"]


class InjectedFault(ServingError):
    """A chaos-injected engine exception; always retryable."""

    retryable = True

    def __init__(self, boundary: str, ordinal: int) -> None:
        super().__init__(f"injected fault at {boundary} (injection #{ordinal})")
        self.boundary = boundary
        self.ordinal = ordinal


@dataclass(frozen=True)
class FaultPlan:
    """Fault probabilities; all draws come from ``seed``.

    Two scopes:

    - ``per_request=False`` (default): the rates are *per-boundary*
      probabilities, drawn independently at every encode and decode step.
      A decode of 25 steps at ``error_rate=0.1`` is then nearly certain to
      fault somewhere — the right dial for hammering a single code path.
    - ``per_request=True``: the rates are *per-request* probabilities.
      Each armed fault type fires once, at a seed-chosen boundary index
      within the request (NaN waits for the next decode step if its index
      lands on an encode), then disarms — the right dial for fleet-shaped
      chaos like "10% of requests hit a fault".
    """

    seed: int = 0
    nan_rate: float = 0.0
    """Probability a decode step's log-probs are overwritten with NaN."""
    slow_rate: float = 0.0
    """Probability of a clock stall of ``slow_seconds``."""
    error_rate: float = 0.0
    """Probability of a raised :class:`InjectedFault`."""
    slow_seconds: float = 0.05
    per_request: bool = False
    fault_horizon: int = 12
    """Per-request mode: armed faults land on a boundary index drawn from
    ``[0, fault_horizon)`` — small enough that short decodes still reach
    their fault."""

    @property
    def active(self) -> bool:
        return self.nan_rate > 0 or self.slow_rate > 0 or self.error_rate > 0


class FaultInjector:
    """Draws faults from the plan; counts what it injected.

    Each boundary consumes a fixed number of RNG draws (3 per decode
    step, 2 per encode) whether or not anything fires, so the fault
    sequence depends only on the plan and the call sequence — not on
    which earlier faults happened to fire.
    """

    def __init__(self, plan: FaultPlan, clock: Clock | None = None) -> None:
        self.plan = plan
        self.clock = clock if clock is not None else Clock()
        self._rng = np.random.default_rng(plan.seed)
        self.injected = {"nan": 0, "slow": 0, "error": 0}
        self.faulted_requests = 0
        self._armed: dict[str, int] = {}
        self._boundary_index = 0

    def _fires(self, rate: float) -> bool:
        # Always draw: keeps the stream position independent of the rates.
        return float(self._rng.random()) < rate

    def _stall(self, boundary: str) -> None:
        self.injected["slow"] += 1
        self.clock.sleep(self.plan.slow_seconds)

    def _raise(self, boundary: str) -> None:
        self.injected["error"] += 1
        raise InjectedFault(boundary, self.injected["error"])

    # ------------------------------------------------------------------
    # Per-request arming
    # ------------------------------------------------------------------
    def begin_request(self) -> None:
        """Arm this request's faults (per-request mode; no-op otherwise).

        Draws happen for every fault type on every request, so the fault
        schedule depends only on the seed and the request sequence.
        """
        self._boundary_index = 0
        self._armed = {}
        if not self.plan.per_request:
            return
        for kind, rate in (
            ("nan", self.plan.nan_rate),
            ("slow", self.plan.slow_rate),
            ("error", self.plan.error_rate),
        ):
            fires = self._fires(rate)
            at = int(self._rng.integers(0, self.plan.fault_horizon))
            if fires:
                self._armed[kind] = at
        if self._armed:
            self.faulted_requests += 1

    def _armed_fire(self, kind: str, is_step: bool) -> bool:
        """Whether an armed fault of ``kind`` fires at this boundary."""
        at = self._armed.get(kind)
        if at is None or self._boundary_index < at:
            return False
        if kind == "nan" and not is_step:
            return False  # NaN logits only exist at decode steps; wait.
        del self._armed[kind]
        return True

    # ------------------------------------------------------------------
    # Boundaries
    # ------------------------------------------------------------------
    def at_encode(self) -> None:
        per_boundary = not self.plan.per_request
        self._boundary_index += 1
        if (per_boundary and self._fires(self.plan.slow_rate)) or self._armed_fire(
            "slow", is_step=False
        ):
            self._stall("encode")
        if (per_boundary and self._fires(self.plan.error_rate)) or self._armed_fire(
            "error", is_step=False
        ):
            self._raise("encode")

    def at_step(self, log_probs: np.ndarray) -> np.ndarray:
        per_boundary = not self.plan.per_request
        self._boundary_index += 1
        nan = (per_boundary and self._fires(self.plan.nan_rate)) or self._armed_fire(
            "nan", is_step=True
        )
        if (per_boundary and self._fires(self.plan.slow_rate)) or self._armed_fire(
            "slow", is_step=True
        ):
            self._stall("step")
        if (per_boundary and self._fires(self.plan.error_rate)) or self._armed_fire(
            "error", is_step=True
        ):
            self._raise("step")
        if nan:
            self.injected["nan"] += 1
            log_probs = log_probs.copy()
            log_probs[0, :] = np.nan
        return log_probs


class FaultInjectingModel:
    """A :class:`QuestionGenerator` proxy that perturbs the two boundaries.

    Everything except ``encode`` and ``step_log_probs`` delegates to the
    wrapped model, so the real engines (beam, greedy) run unmodified —
    the chaos tests exercise the actual decode paths, not a simulation.
    """

    def __init__(self, model, injector: FaultInjector) -> None:
        self._model = model
        self._injector = injector

    def __getattr__(self, name: str):
        return getattr(self._model, name)

    def encode(self, batch):
        self._injector.at_encode()
        return self._model.encode(batch)

    def step_log_probs(self, prev_tokens, state, context, row_indices=None):
        log_probs, new_state = self._model.step_log_probs(
            prev_tokens, state, context, row_indices
        )
        return self._injector.at_step(log_probs), new_state
