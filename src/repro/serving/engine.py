"""Step-level continuous batching over the flattened beam frontier.

:class:`~repro.serving.batcher.MicroBatcher` runs homogeneous *fixed*
batches: a group enters the decoder together and leaves together, so one
slow (long, wide-beam) request head-of-line blocks its batchmates, idle
row slots stay idle until the whole batch returns, and a request that
arrives mid-flight waits a full batch turnaround. The continuous engine
removes the batch boundary entirely (Orca-style iteration-level
scheduling): the unit of scheduling is one *decode step* of a live
frontier of ``(sum of beam sizes)`` rows, and between every step the
engine

- **retires** finished rows immediately (EOS/stop-rule/max-length), and
  routes deadline-expired rows to the degradation ladder's floor;
- **admits** queued requests into the freed row slots (breaker-gated,
  a bounded number per step);
- runs exactly one batched ``step_log_probs`` over everything in flight.

Requests of different lengths, beam widths and ages cohabit the same
matmul. The per-request decode is byte-identical to a solo run of the
batched beam engine because three invariants hold:

1. every request decodes at the same **fixed source width**
   (``pad_to``) — attention over the extra padded positions contributes
   exactly zero, and a fixed width means the reduction shapes (and hence
   the floating-point rounding) never depend on who else is in flight;
2. candidate selection runs per request over its **own** extended-vocab
   columns (``V + its oov count``), so a neighbour with more OOV slots
   cannot widen — and thereby perturb — the candidate walk; the walk
   itself is the canonical
   :func:`~repro.decoding.batched_beam.select_step_candidates`;
3. recurrent state rows are private to their request and reordered with
   one :meth:`~repro.models.base.DecoderStepState.select` per step, the
   same bookkeeping the batched beam engine uses.

Fault isolation is per request where physics allows it: NaN rows poison
only the slot that produced them (that request falls back to the solo
ladder; cohabitants keep decoding), while a raised step fault — which
aborts the shared matmul — dumps the whole frontier onto the solo path,
where each request runs its own ladder and retry budget. Either way the
engine itself never raises: every submitted request terminates as exactly
one typed outcome (served, rejected, shed, or failed).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.data.batching import collate
from repro.data.dataset import EncodedExample
from repro.data.vocabulary import BOS_ID, EOS_ID, PAD_ID
from repro.decoding.batched_beam import select_step_candidates, should_stop_row
from repro.decoding.hypothesis import Hypothesis
from repro.models.base import (
    DecoderStepState,
    EncoderContext,
    expand_encoder_context,
)
from repro.observability import nonfinite_sentinel
from repro.serving.cache import pad_batch
from repro.serving.deadline import Deadline
from repro.serving.errors import BreakerOpen, RejectedRequest, RequestFailed
from repro.serving.ladder import build_ladder
from repro.serving.requests import GenerationRequest
from repro.serving.service import InferenceService, RequestOutcome
from repro.tensor.core import Tensor, no_grad
from repro.tensor.lazy import compile_graph, resolve_fusion

__all__ = ["EngineConfig", "EngineStats", "ContinuousBatchingEngine"]


@dataclass(frozen=True)
class EngineConfig:
    """Capacity and pacing of the continuous frontier."""

    max_rows: int = 12
    """Frontier row budget; a request occupies ``beam_size`` rows."""
    queue_limit: int = 64
    """Bounded admission queue; submits beyond it are shed."""
    admit_per_step: int = 4
    """Most requests admitted into free slots per decode step."""
    pad_to: int | None = None
    """Fixed source width of every frontier row. ``None`` uses the
    service's admission cap (``AdmissionPolicy.max_source_tokens``).
    Requests longer than this are served on the solo path instead."""
    fusion: bool | None = None
    """Stage the shared step through :mod:`repro.tensor.lazy`; ``None``
    defers to the process-wide default."""

    def __post_init__(self) -> None:
        if self.max_rows < 1:
            raise ValueError(f"max_rows must be >= 1, got {self.max_rows}")
        if self.queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.admit_per_step < 1:
            raise ValueError(f"admit_per_step must be >= 1, got {self.admit_per_step}")
        if self.pad_to is not None and self.pad_to < 1:
            raise ValueError(f"pad_to must be >= 1, got {self.pad_to}")


@dataclass
class EngineStats:
    """Engine-side ledger; request dispositions live in ``ServiceStats``."""

    submitted: int = 0
    frontier_admissions: int = 0
    steps: int = 0
    served_in_frontier: int = 0
    expired: int = 0
    poisoned: int = 0
    """Requests whose rows went NaN and were isolated to the solo path."""
    frontier_fallbacks: int = 0
    """Whole-frontier dumps caused by a raised shared-step fault."""
    solo_fallbacks: int = 0
    """Requests routed through the per-request ladder for any reason."""
    oversize: int = 0
    """Requests too long/wide for the frontier, served solo."""
    duplicate_results: int = 0
    """Same-id frontier completions dropped by the idempotency guard."""
    peak_rows: int = 0
    _served_ids: set[str] = field(default_factory=set, repr=False)

    def note_first_completion(self, request_id: str) -> bool:
        """Idempotency guard mirroring ``ServiceStats.note_first_completion``:
        a re-dispatched request may finish in two frontiers, but only the
        first completion counts. Empty ids carry no identity."""
        if not request_id:
            return True
        if request_id in self._served_ids:
            return False
        self._served_ids.add(request_id)
        return True

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "frontier_admissions": self.frontier_admissions,
            "steps": self.steps,
            "served_in_frontier": self.served_in_frontier,
            "expired": self.expired,
            "poisoned": self.poisoned,
            "frontier_fallbacks": self.frontier_fallbacks,
            "solo_fallbacks": self.solo_fallbacks,
            "oversize": self.oversize,
            "duplicate_results": self.duplicate_results,
            "peak_rows": self.peak_rows,
        }


@dataclass
class _Pending:
    request: GenerationRequest
    encoded: EncodedExample
    deadline: Deadline
    submitted_at: float


@dataclass
class _Slot:
    """One in-flight request: ``rows`` contiguous frontier rows."""

    request: GenerationRequest
    encoded: EncodedExample
    deadline: Deadline
    submitted_at: float
    context: EncoderContext
    """Beam-expanded, fixed-width encoder context for this request."""
    max_oov: int
    rows: int
    live: list[Hypothesis]
    finished: list[Hypothesis] = field(default_factory=list)
    steps: int = 0
    prev: np.ndarray = None  # (rows,) previous extended-vocab tokens
    live_lp: np.ndarray = None  # (rows,) live log-probs, -inf at dead slots


def _concat_states(a: DecoderStepState, b: DecoderStepState) -> DecoderStepState:
    """Append ``b``'s rows after ``a``'s (frontier admission)."""
    layers = [
        (
            Tensor(np.concatenate([ha.data, hb.data], axis=0)),
            Tensor(np.concatenate([ca.data, cb.data], axis=0)),
        )
        for (ha, ca), (hb, cb) in zip(a.lstm_states, b.lstm_states)
    ]
    if (a.coverage is None) != (b.coverage is None):
        raise ValueError("cannot merge decoder states with mismatched coverage")
    coverage = (
        np.concatenate([a.coverage, b.coverage], axis=0)
        if a.coverage is not None
        else None
    )
    return DecoderStepState(layers, coverage=coverage)


class ContinuousBatchingEngine:
    """Continuous-batching serving over an :class:`InferenceService`.

    The API mirrors :class:`~repro.serving.batcher.MicroBatcher`:
    ``submit`` enqueues (returning an outcome only when the request never
    entered the queue), ``step`` advances the frontier by one decode step,
    and ``drain`` steps until nothing is queued or in flight. The core is
    synchronous — tests and the chaos harness decide exactly when a step
    happens.
    """

    def __init__(
        self,
        service: InferenceService,
        config: EngineConfig | None = None,
    ) -> None:
        self.service = service
        self.config = config if config is not None else EngineConfig()
        self.stats = EngineStats()
        self.pad_to = (
            self.config.pad_to
            if self.config.pad_to is not None
            else service.validator.policy.max_source_tokens
        )
        self._queue: deque[_Pending] = deque()
        self._slots: list[_Slot] = []
        self._state: DecoderStepState | None = None
        self._context: EncoderContext | None = None
        self._step_fn = service.model.step_log_probs
        if resolve_fusion(self.config.fusion):
            self._step_fn = compile_graph(service.model.step_log_probs)

    # ------------------------------------------------------------------
    # Introspection (the property-test surface)
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def in_flight(self) -> int:
        return len(self._slots)

    @property
    def frontier_rows(self) -> int:
        return sum(slot.rows for slot in self._slots)

    def slot_table(self) -> list[tuple[str, int, int]]:
        """``(request_id, first_row, rows)`` per live slot, frontier order."""
        table = []
        base = 0
        for slot in self._slots:
            table.append((slot.request.request_id, base, slot.rows))
            base += slot.rows
        return table

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request: GenerationRequest) -> RequestOutcome | None:
        """Admit into the queue; an outcome is returned only when the
        request never entered it (rejected, or shed on a full queue)."""
        self.stats.submitted += 1
        try:
            encoded = self.service.admit(request)
        except RejectedRequest as error:
            return RequestOutcome(
                request.request_id, "rejected", error=type(error).__name__,
                reason=error.reason,
            )
        if self.queue_depth >= self.config.queue_limit:
            self.service.note_shed("queue_full")
            return RequestOutcome(
                request.request_id, "shed", error="RequestShed", reason="queue_full"
            )
        self._queue.append(
            _Pending(
                request,
                encoded,
                self.service.start_deadline(request),
                self.service.clock.now(),
            )
        )
        self._gauges()
        return None

    # ------------------------------------------------------------------
    # The scheduler loop
    # ------------------------------------------------------------------
    def step(self) -> list[RequestOutcome]:
        """One scheduling round: retire expired, admit, decode one step."""
        outcomes: list[RequestOutcome] = []
        self._retire_expired(outcomes)
        self._admit(outcomes)
        if not self._slots:
            self._gauges()
            return outcomes

        model = self.service.model
        model.eval()
        prev = np.concatenate([slot.prev for slot in self._slots])
        try:
            with no_grad():
                step_lp, new_state = self._step_fn(prev, self._state, self._merged())
        except Exception:  # noqa: BLE001 - shared-step fault: solo path decides
            self._dump_frontier(outcomes)
            self._gauges()
            return outcomes

        self.stats.steps += 1
        self.service.telemetry.counter("serving.engine.steps")
        vocab = self.service.model.decoder_vocab_size
        nan_flags = np.isnan(step_lp)
        step_lp[:, PAD_ID] = -np.inf
        step_lp[:, BOS_ID] = -np.inf

        survivors: list[_Slot] = []
        select_parts: list[np.ndarray] = []
        base = 0
        for slot in self._slots:
            rows = slot.rows
            v_ext = vocab + slot.max_oov
            if nan_flags[base: base + rows, :v_ext].any():
                # Poison isolated to this slot: cohabitants keep decoding.
                self.stats.poisoned += 1
                self.service.telemetry.counter("serving.engine.poisoned")
                nonfinite_sentinel(
                    self.service.telemetry, "decode.logits", float("nan"),
                    phase="continuous", beam_step=slot.steps,
                )
                outcomes.append(self._serve_solo(slot.request, slot.encoded, slot.deadline))
                base += rows
                continue
            block = step_lp[base: base + rows, :v_ext]
            width = len(slot.live)
            totals = block[:width] + slot.live_lp[:width, None]
            eos_picks, continuations = select_step_candidates(
                totals, block[:width], rows
            )
            for source, token_lp in eos_picks:
                grown = slot.live[source].extended(EOS_ID, token_lp, finished=True)
                # The EOS token scores but never surfaces.
                slot.finished.append(
                    Hypothesis(grown.token_ids[:-1], grown.log_prob, finished=True)
                )
            slot.steps += 1
            if not continuations:
                outcomes.append(self._finish(slot))
                base += rows
                continue
            select = np.arange(rows, dtype=np.int64)
            next_prev = np.full(rows, EOS_ID, dtype=np.int64)
            next_lp = np.full(rows, -np.inf)
            new_live: list[Hypothesis] = []
            for j, (source, token, token_lp) in enumerate(continuations):
                grown = slot.live[source].extended(token, token_lp, finished=False)
                new_live.append(grown)
                select[j] = source
                next_prev[j] = token
                next_lp[j] = grown.log_prob
            slot.live = new_live
            slot.prev = next_prev
            slot.live_lp = next_lp
            if slot.steps >= slot.request.max_length or should_stop_row(
                slot.finished,
                [h.log_prob for h in new_live],
                slot.steps,
                rows,
                slot.request.max_length,
                self.service.config.length_penalty,
            ):
                outcomes.append(self._finish(slot))
            else:
                survivors.append(slot)
                select_parts.append(base + select)
            base += rows

        changed = len(survivors) != len(self._slots)
        self._slots = survivors
        if survivors:
            self._state = new_state.select(np.concatenate(select_parts))
        else:
            self._state = None
        if changed:
            self._context = None
        self._gauges()
        return outcomes

    def drain(self) -> list[RequestOutcome]:
        """Step until nothing is queued or in flight."""
        outcomes: list[RequestOutcome] = []
        while self._queue or self._slots:
            outcomes.extend(self.step())
        return outcomes

    # ------------------------------------------------------------------
    # Scheduling phases
    # ------------------------------------------------------------------
    def _retire_expired(self, outcomes: list[RequestOutcome]) -> None:
        """Expired in-flight rows leave *now*; the ladder floor serves them."""
        if not self._slots:
            return
        survivors: list[_Slot] = []
        keep: list[int] = []
        base = 0
        for slot in self._slots:
            if slot.deadline.expired():
                self.stats.expired += 1
                self.service.telemetry.counter("serving.engine.expired")
                outcomes.append(self._serve_solo(slot.request, slot.encoded, slot.deadline))
            else:
                survivors.append(slot)
                keep.extend(range(base, base + slot.rows))
            base += slot.rows
        if len(survivors) != len(self._slots):
            self._slots = survivors
            self._state = (
                self._state.select(np.asarray(keep, dtype=np.int64)) if survivors else None
            )
            self._context = None

    def _admit(self, outcomes: list[RequestOutcome]) -> None:
        admitted = 0
        while self._queue and admitted < self.config.admit_per_step:
            pending = self._queue[0]
            if pending.deadline.expired():
                # Expired while queued: straight to the deadline-blind floor.
                self._queue.popleft()
                self.stats.expired += 1
                self.service.telemetry.counter("serving.engine.expired")
                outcomes.append(
                    self._serve_solo(pending.request, pending.encoded, pending.deadline)
                )
                continue
            rows_needed = pending.request.beam_size
            oversize = (
                rows_needed > self.config.max_rows
                or len(pending.encoded.src_ids) > self.pad_to
            )
            if oversize:
                # Too wide/long for the frontier; the solo path still serves it.
                self._queue.popleft()
                self.stats.oversize += 1
                self.service.telemetry.counter("serving.engine.oversize")
                outcomes.append(
                    self._serve_solo(pending.request, pending.encoded, pending.deadline)
                )
                continue
            if self.frontier_rows + rows_needed > self.config.max_rows:
                break  # no free slots this step; head of queue keeps its turn
            try:
                self.service.breaker.admit()
            except BreakerOpen:
                self._queue.popleft()
                self.service.note_shed("breaker_open")
                outcomes.append(
                    RequestOutcome(
                        pending.request.request_id, "shed", error="BreakerOpen",
                        reason="breaker_open",
                    )
                )
                continue
            self._queue.popleft()
            if self.service.injector is not None:
                self.service.injector.begin_request()
            try:
                solo = self._encode(pending.encoded)
            except Exception:  # noqa: BLE001 - encode fault: solo path decides
                outcomes.append(
                    self._serve_solo(pending.request, pending.encoded, pending.deadline)
                )
                continue
            self._install(pending, solo)
            admitted += 1
            self.stats.frontier_admissions += 1
            self.service.telemetry.counter("serving.engine.admitted")
            self.service.telemetry.observe(
                "serving.queue.wait_seconds",
                max(0.0, self.service.clock.now() - pending.submitted_at),
            )

    def _encode(self, encoded: EncodedExample) -> EncoderContext:
        batch = pad_batch(collate([encoded], pad_id=PAD_ID), self.pad_to)
        model = self.service.model
        model.eval()
        with no_grad():
            return model.encode(batch)

    def _install(self, pending: _Pending, solo: EncoderContext) -> None:
        beam = pending.request.beam_size
        context = expand_encoder_context(solo, beam)
        state = self.service.model.initial_decoder_state(context)
        prev = np.full(beam, BOS_ID, dtype=np.int64)
        live_lp = np.full(beam, -np.inf)
        live_lp[0] = 0.0
        slot = _Slot(
            request=pending.request,
            encoded=pending.encoded,
            deadline=pending.deadline,
            submitted_at=pending.submitted_at,
            context=context,
            max_oov=solo.max_oov,
            rows=beam,
            live=[Hypothesis((), 0.0)],
            prev=prev,
            live_lp=live_lp,
        )
        self._slots.append(slot)
        self._state = state if self._state is None else _concat_states(self._state, state)
        self._context = None
        self.stats.peak_rows = max(self.stats.peak_rows, self.frontier_rows)

    def _merged(self) -> EncoderContext:
        """The frontier's encoder context; rebuilt on membership change."""
        if self._context is None:
            contexts = [slot.context for slot in self._slots]
            self._context = EncoderContext(
                encoder_states=Tensor(
                    np.concatenate([c.encoder_states.data for c in contexts], axis=0)
                ),
                src_pad_mask=np.concatenate([c.src_pad_mask for c in contexts], axis=0),
                src_ext=np.concatenate([c.src_ext for c in contexts], axis=0),
                max_oov=max(c.max_oov for c in contexts),
                initial_states=[],
            )
        return self._context

    # ------------------------------------------------------------------
    # Completion paths
    # ------------------------------------------------------------------
    def _finish(self, slot: _Slot) -> RequestOutcome:
        service = self.service
        pool = slot.finished or [
            Hypothesis(h.token_ids, h.log_prob, finished=False) for h in slot.live
        ]
        best = sorted(pool, key=lambda h: -h.score(service.config.length_penalty))[0]
        top_rung = build_ladder(
            slot.request.beam_size, slot.request.max_length,
            service.config.truncated_length,
        )[0]
        try:
            result = service._build_result(
                slot.request, slot.encoded, best, top_rung,
                attempts=1, started=slot.submitted_at,
            )
        except Exception as error:  # noqa: BLE001 - per-request poison
            service._note_failed()
            return RequestOutcome(
                slot.request.request_id, "failed", error=type(error).__name__
            )
        service.breaker.record_success()
        service._note_served(result)
        if self.stats.note_first_completion(slot.request.request_id):
            self.stats.served_in_frontier += 1
        else:
            self.stats.duplicate_results += 1
        return RequestOutcome(slot.request.request_id, "served", result=result)

    def _serve_solo(
        self,
        request: GenerationRequest,
        encoded: EncodedExample,
        deadline: Deadline,
    ) -> RequestOutcome:
        """The per-request fallback: full ladder, retries, own accounting."""
        self.stats.solo_fallbacks += 1
        self.service.telemetry.counter("serving.engine.solo_fallback")
        try:
            result = self.service.handle_admitted(request, encoded, deadline)
        except BreakerOpen as error:
            return RequestOutcome(
                request.request_id, "shed", error=type(error).__name__,
                reason="breaker_open",
            )
        except RequestFailed as error:
            return RequestOutcome(
                request.request_id, "failed",
                error=type(error.cause).__name__ if error.cause else "unknown",
            )
        return RequestOutcome(request.request_id, "served", result=result)

    def _dump_frontier(self, outcomes: list[RequestOutcome]) -> None:
        """A shared-step fault cannot be attributed to one row: everything
        in flight falls back to the solo path (per-request ladder + retry
        budget, which owns the breaker's failure accounting)."""
        self.stats.frontier_fallbacks += 1
        self.service.telemetry.counter("serving.engine.frontier_fallback")
        slots, self._slots, self._state, self._context = self._slots, [], None, None
        for slot in slots:
            outcomes.append(self._serve_solo(slot.request, slot.encoded, slot.deadline))

    def _gauges(self) -> None:
        tel = self.service.telemetry
        tel.gauge("serving.engine.rows", float(self.frontier_rows))
        tel.gauge("serving.engine.queue_depth", float(self.queue_depth))
