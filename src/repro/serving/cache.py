"""Bounded LRU cache of encoded source states, keyed by content hash.

Millions of users asking about the same passages re-run the same encoder
over the same tokens. The cache sits directly in front of the encoder
(:class:`CachedEncoderModel` is a model proxy, so every decode path —
ladder rungs, the micro-batcher's solo fallback, the continuous engine —
hits it without knowing it exists) and stores the full
:class:`~repro.models.base.EncoderContext` of single-example batches.

The contract is **byte identity**: a cache hit must produce bit-identical
decode outputs to a miss. Three design points guarantee it:

- the key is a SHA-256 over everything the encode depends on — the
  encoder-vocabulary ids, the extended-vocabulary ids (two sources can
  share ``src_ids`` while differing in which tokens are copy-visible),
  the padded source width, and a fingerprint of the model's weights and
  configuration;
- stored contexts are frozen (every backing array is marked read-only),
  so a later request cannot mutate what an earlier one cached;
- the fingerprint changes when the weights change, so stale states from
  old weights can never poison decodes against new ones
  (:meth:`EncoderStateCache.refresh` re-hashes and drops every entry on
  drift).

Hits, misses, evictions and invalidations are counted both locally
(:class:`CacheStats`) and through telemetry (``serving.cache.*``).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.data.batching import Batch
from repro.data.vocabulary import PAD_ID
from repro.models.base import EncoderContext
from repro.observability import get_telemetry

__all__ = [
    "fingerprint_model",
    "pad_batch",
    "CacheStats",
    "EncoderStateCache",
    "CachedEncoderModel",
]


def fingerprint_model(model) -> str:
    """SHA-256 of the model's identity: class, shapes, and every weight byte.

    Any weight change — fine-tuning, quantization, a corrupted load —
    yields a different fingerprint, which keys cached encoder states to
    the exact parameters that produced them.
    """
    digest = hashlib.sha256()
    digest.update(type(model).__name__.encode())
    digest.update(str(getattr(model, "decoder_vocab_size", "")).encode())
    for name, param in sorted(model.named_parameters(), key=lambda item: item[0]):
        digest.update(name.encode())
        digest.update(str(param.data.shape).encode())
        digest.update(str(param.data.dtype).encode())
        digest.update(np.ascontiguousarray(param.data).tobytes())
    return digest.hexdigest()


def pad_batch(batch: Batch, width: int) -> Batch:
    """Pad every source-axis array of ``batch`` out to ``width`` positions.

    The LSTM encoder carries state through padded positions unchanged and
    emits zeros there, and attention masks them to exactly zero weight, so
    the padded positions are numerically inert — but a *fixed* width is
    what makes the continuous engine's frontier byte-stable: every request
    decodes at the same source width whether it runs alone or next to
    requests of other lengths.
    """
    current = batch.src.shape[1]
    if current == width:
        return batch
    if current > width:
        raise ValueError(f"cannot pad a width-{current} batch down to {width}")
    extra = width - current

    def pad(array: np.ndarray, value) -> np.ndarray:
        return np.pad(array, ((0, 0), (0, extra)), constant_values=value)

    return Batch(
        src=pad(batch.src, PAD_ID),
        src_pad_mask=pad(batch.src_pad_mask, True),
        src_ext=pad(batch.src_ext, PAD_ID),
        tgt_input=batch.tgt_input,
        tgt_output=batch.tgt_output,
        tgt_pad_mask=batch.tgt_pad_mask,
        att_allowed=batch.att_allowed,
        copy_match=np.pad(batch.copy_match, ((0, 0), (0, 0), (0, extra))),
        answer_mask=pad(batch.answer_mask, 0.0),
        oov_tokens=batch.oov_tokens,
        examples=batch.examples,
    )


def _freeze(context: EncoderContext) -> EncoderContext:
    """Mark every backing array read-only; cached state must be immutable."""
    context.encoder_states.data.flags.writeable = False
    context.src_pad_mask.flags.writeable = False
    context.src_ext.flags.writeable = False
    for h, c in context.initial_states:
        h.data.flags.writeable = False
        c.data.flags.writeable = False
    return context


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


class EncoderStateCache:
    """Bounded LRU of :class:`EncoderContext` by content-hash key.

    Bind it to a model once (:meth:`bind`); every lookup key then carries
    that model's weight fingerprint. After a weight change, call
    :meth:`refresh` — the fingerprint moves and every cached entry is
    dropped, which is what keeps a warm cache from serving stale encoder
    states against new weights.
    """

    def __init__(self, capacity: int = 128, telemetry=None) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self.stats = CacheStats()
        self._entries: OrderedDict[str, EncoderContext] = OrderedDict()
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        if self._fingerprint is None:
            raise RuntimeError("cache is not bound to a model; call bind(model) first")
        return self._fingerprint

    def bind(self, model) -> str:
        """Fingerprint ``model`` and key all future lookups to it."""
        self._fingerprint = fingerprint_model(model)
        return self._fingerprint

    def refresh(self, model) -> bool:
        """Re-fingerprint after a (possible) weight change.

        Returns True when the weights drifted; the cache is then emptied —
        entries encoded under the old weights are unreachable via the new
        keys anyway, and keeping them would only squat the LRU budget.
        """
        old = self._fingerprint
        new = self.bind(model)
        if old is not None and old != new:
            dropped = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += dropped
            if dropped:
                self.telemetry.counter("serving.cache.invalidation", dropped)
            return True
        return False

    # ------------------------------------------------------------------
    def key_for(self, batch: Batch) -> str:
        """The content key of a single-example batch at its padded width."""
        example = batch.examples[0]
        digest = hashlib.sha256()
        digest.update(self.fingerprint.encode())
        digest.update(str(batch.src.shape[1]).encode())
        digest.update(np.asarray(example.src_ids, dtype=np.int64).tobytes())
        digest.update(np.asarray(example.src_ext_ids, dtype=np.int64).tobytes())
        digest.update(np.asarray(example.answer_positions, dtype=np.int64).tobytes())
        return digest.hexdigest()

    def get(self, key: str) -> EncoderContext | None:
        context = self._entries.get(key)
        if context is None:
            self.stats.misses += 1
            self.telemetry.counter("serving.cache.miss")
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        self.telemetry.counter("serving.cache.hit")
        return context

    def put(self, key: str, context: EncoderContext) -> None:
        self._entries[key] = _freeze(context)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            self.telemetry.counter("serving.cache.eviction")
        self.telemetry.gauge("serving.cache.size", float(len(self._entries)))

    def __len__(self) -> int:
        return len(self._entries)

    def as_dict(self) -> dict:
        payload = self.stats.as_dict()
        payload["size"] = len(self._entries)
        payload["capacity"] = self.capacity
        return payload


class CachedEncoderModel:
    """A :class:`QuestionGenerator` proxy that memoizes single-example encodes.

    Only ``encode`` is intercepted, and only for ``batch.size == 1`` (the
    shape every serving path produces: solo ladder decodes and the
    continuous engine's per-request admission encodes). Multi-example
    training/eval batches pass straight through. Everything else delegates
    to the wrapped model, so the proxy composes with the fault-injection
    seam: stacked as ``FaultInjectingModel(CachedEncoderModel(model))``,
    injected encode faults still fire whether or not the lookup hits.
    """

    def __init__(self, model, cache: EncoderStateCache) -> None:
        self._model = model
        self.cache = cache
        cache.bind(model)

    def __getattr__(self, name: str):
        return getattr(self._model, name)

    def encode(self, batch: Batch) -> EncoderContext:
        if batch.size != 1:
            return self._model.encode(batch)
        key = self.cache.key_for(batch)
        context = self.cache.get(key)
        if context is None:
            context = self._model.encode(batch)
            self.cache.put(key, context)
        return context
