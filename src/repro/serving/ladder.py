"""The degradation ladder: how a request's decode falls, rung by rung.

Under deadline pressure or repeated decode failure the service does not
die — it serves a cheaper answer. The rungs, in order:

====================  ============================================
``beam``              full beam-``k`` search (the paper's setting)
``beam_1``            beam search narrowed to a single hypothesis
``greedy``            batched greedy argmax decode
``greedy_truncated``  greedy with a short length cap, and the only
                      rung that ignores the deadline — it is the
                      guaranteed-terminating floor of the ladder
====================  ============================================

Every served request records which rung produced its answer, so "how
degraded is the fleet right now" is a counter query, not a guess.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.batching import Batch
from repro.decoding.batched_beam import batched_beam_decode
from repro.decoding.greedy import greedy_decode
from repro.decoding.hypothesis import Hypothesis
from repro.models.base import QuestionGenerator

__all__ = ["Rung", "RUNG_NAMES", "build_ladder", "run_rung"]

RUNG_NAMES = ("beam", "beam_1", "greedy", "greedy_truncated")


@dataclass(frozen=True)
class Rung:
    """One decode configuration on the ladder."""

    name: str
    kind: str
    """``beam`` (batched beam engine) or ``greedy``."""
    beam_size: int
    max_length: int
    heed_deadline: bool = True
    """The bottom rung runs deadline-blind: its tiny length cap bounds the
    work, and serving *something* beats dying on an expired budget."""


def build_ladder(
    beam_size: int,
    max_length: int,
    truncated_length: int = 8,
) -> tuple[Rung, ...]:
    """The ladder for a request's (beam_size, max_length) configuration.

    A beam-1 request starts at the ``greedy`` rung (its ``beam`` and
    ``beam_1`` rungs would be the same work twice).
    """
    truncated = min(truncated_length, max_length)
    rungs: list[Rung] = []
    if beam_size > 1:
        rungs.append(Rung("beam", "beam", beam_size, max_length))
        rungs.append(Rung("beam_1", "beam", 1, max_length))
    rungs.append(Rung("greedy", "greedy", 1, max_length))
    rungs.append(Rung("greedy_truncated", "greedy", 1, truncated, heed_deadline=False))
    return tuple(rungs)


def run_rung(
    rung: Rung,
    model: QuestionGenerator,
    batch: Batch,
    length_penalty: float = 1.0,
    deadline=None,
    telemetry=None,
) -> list[Hypothesis]:
    """Decode ``batch`` at one rung (deadline ignored where the rung says so)."""
    effective_deadline = deadline if rung.heed_deadline else None
    if rung.kind == "beam":
        return batched_beam_decode(
            model,
            batch,
            beam_size=rung.beam_size,
            max_length=rung.max_length,
            length_penalty=length_penalty,
            telemetry=telemetry,
            deadline=effective_deadline,
        )
    if rung.kind == "greedy":
        return greedy_decode(
            model, batch, max_length=rung.max_length, deadline=effective_deadline
        )
    raise ValueError(f"unknown rung kind {rung.kind!r}")
