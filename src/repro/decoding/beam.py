"""Beam search decoding.

The paper sets the beam size to 3 at test time. This implementation follows
OpenNMT's classic beam: expand every live hypothesis by the full extended
vocabulary, keep the top ``beam_size`` continuations, move EOS-terminated
hypotheses to the finished pool, and stop when the pool is full or the best
live score cannot beat the best finished one.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import Batch
from repro.data.vocabulary import BOS_ID, EOS_ID, PAD_ID
from repro.decoding.hypothesis import Hypothesis
from repro.models.base import EncoderContext, QuestionGenerator
from repro.tensor.core import no_grad

__all__ = ["beam_decode", "beam_decode_example"]


def beam_decode(
    model: QuestionGenerator,
    batch: Batch,
    beam_size: int = 3,
    max_length: int = 30,
    length_penalty: float = 1.0,
) -> list[Hypothesis]:
    """Beam-decode every example in the batch; returns the best hypothesis each."""
    model.eval()
    with no_grad():
        context = model.encode(batch)
        return [
            beam_decode_example(
                model,
                context,
                example_index,
                beam_size=beam_size,
                max_length=max_length,
                length_penalty=length_penalty,
            )
            for example_index in range(context.batch_size)
        ]


def beam_decode_example(
    model: QuestionGenerator,
    context: EncoderContext,
    example_index: int,
    beam_size: int = 3,
    max_length: int = 30,
    length_penalty: float = 1.0,
) -> Hypothesis:
    """Beam search for one example of an encoded batch.

    Parameters
    ----------
    model, context:
        The model and the :meth:`~repro.models.base.QuestionGenerator.encode`
        output it produced.
    example_index:
        Which batch row to decode.
    beam_size:
        Number of live hypotheses (paper: 3).
    max_length:
        Hard cap on generated length.
    length_penalty:
        Exponent for length normalization when ranking finished hypotheses
        (1.0 = average log-probability).
    """
    if beam_size < 1:
        raise ValueError(f"beam_size must be >= 1, got {beam_size}")

    with no_grad():
        live = [Hypothesis((), 0.0)]
        base_state = model.initial_decoder_state(context)
        state = base_state.select(np.array([example_index]))
        finished: list[Hypothesis] = []

        for _ in range(max_length):
            width = len(live)
            prev = np.array(
                [hyp.token_ids[-1] if hyp.token_ids else BOS_ID for hyp in live],
                dtype=np.int64,
            )
            rows = np.full(width, example_index)
            step_lp, new_state = model.step_log_probs(prev, state, context, row_indices=rows)
            step_lp[:, PAD_ID] = -np.inf
            step_lp[:, BOS_ID] = -np.inf

            # Candidate scores: (width, V_ext) cumulative log-probs.
            totals = step_lp + np.array([hyp.log_prob for hyp in live])[:, None]
            flat = totals.reshape(-1)
            top = np.argpartition(-flat, min(2 * beam_size, flat.size - 1))[: 2 * beam_size]
            top = top[np.argsort(-flat[top])]

            next_live: list[Hypothesis] = []
            next_sources: list[int] = []
            for flat_index in top:
                source = int(flat_index // totals.shape[1])
                token = int(flat_index % totals.shape[1])
                token_lp = float(step_lp[source, token])
                if not np.isfinite(token_lp):
                    continue
                candidate = live[source].extended(token, token_lp, finished=token == EOS_ID)
                if candidate.finished:
                    # Drop the EOS token itself from the surface sequence.
                    finished.append(
                        Hypothesis(candidate.token_ids[:-1], candidate.log_prob, finished=True)
                    )
                else:
                    next_live.append(candidate)
                    next_sources.append(source)
                if len(next_live) == beam_size:
                    break

            if not next_live:
                break
            state = new_state.select(np.array(next_sources))
            live = next_live

            if len(finished) >= beam_size:
                best_finished = max(h.score(length_penalty) for h in finished)
                best_live_possible = max(h.score(length_penalty) for h in live)
                if best_finished >= best_live_possible:
                    break

        if not finished:
            finished = [Hypothesis(h.token_ids, h.log_prob, finished=False) for h in live]
        return max(finished, key=lambda h: h.score(length_penalty))
