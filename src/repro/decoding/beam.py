"""Beam search decoding.

The paper sets the beam size to 3 at test time. Batch-level decoding
(:func:`beam_decode`) delegates to the batch-parallel engine in
:mod:`repro.decoding.batched_beam`, which decodes every example of the
batch simultaneously. :func:`beam_decode_example` remains for single-example
use (interactive generation, introspection); it drives the *same* canonical
candidate walk and stopping rule as the engine, so the two paths return
identical hypotheses:

- expand every live hypothesis by the full extended vocabulary;
- keep the top ``beam_size`` viable continuations, widening the candidate
  scan past ``2 * beam_size`` if EOS finishes or non-viable entries crowd
  the window;
- move EOS-terminated hypotheses to the finished pool;
- stop when the pool is full and the best finished normalized score beats
  every live hypothesis's optimistic (GNMT-style) bound.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import Batch
from repro.data.vocabulary import BOS_ID, EOS_ID, PAD_ID
from repro.decoding.batched_beam import (
    batched_beam_decode,
    select_step_candidates,
    should_stop_row,
)
from repro.decoding.hypothesis import Hypothesis
from repro.models.base import EncoderContext, QuestionGenerator
from repro.tensor.core import no_grad

__all__ = ["beam_decode", "beam_decode_example"]


def beam_decode(
    model: QuestionGenerator,
    batch: Batch,
    beam_size: int = 3,
    max_length: int = 30,
    length_penalty: float = 1.0,
) -> list[Hypothesis]:
    """Beam-decode every example in the batch; returns the best hypothesis each.

    Runs the batch-parallel engine: one ``step_log_probs`` call per step for
    the whole ``(B * beam_size,)`` frontier instead of a per-example loop.
    """
    return batched_beam_decode(
        model,
        batch,
        beam_size=beam_size,
        max_length=max_length,
        length_penalty=length_penalty,
    )


def beam_decode_example(
    model: QuestionGenerator,
    context: EncoderContext,
    example_index: int,
    beam_size: int = 3,
    max_length: int = 30,
    length_penalty: float = 1.0,
) -> Hypothesis:
    """Beam search for one example of an encoded batch.

    Parameters
    ----------
    model, context:
        The model and the :meth:`~repro.models.base.QuestionGenerator.encode`
        output it produced.
    example_index:
        Which batch row to decode.
    beam_size:
        Number of live hypotheses (paper: 3).
    max_length:
        Hard cap on generated length.
    length_penalty:
        Exponent for length normalization when ranking finished hypotheses
        (1.0 = average log-probability).
    """
    if beam_size < 1:
        raise ValueError(f"beam_size must be >= 1, got {beam_size}")

    with no_grad():
        live = [Hypothesis((), 0.0)]
        base_state = model.initial_decoder_state(context)
        state = base_state.select(np.array([example_index]))
        finished: list[Hypothesis] = []

        for step in range(max_length):
            width = len(live)
            prev = np.array(
                [hyp.token_ids[-1] if hyp.token_ids else BOS_ID for hyp in live],
                dtype=np.int64,
            )
            rows = np.full(width, example_index)
            step_lp, new_state = model.step_log_probs(prev, state, context, row_indices=rows)
            step_lp[:, PAD_ID] = -np.inf
            step_lp[:, BOS_ID] = -np.inf

            # Candidate scores: (width, V_ext) cumulative log-probs.
            totals = step_lp + np.array([hyp.log_prob for hyp in live])[:, None]
            eos_picks, continuations = select_step_candidates(totals, step_lp, beam_size)

            for source, token_lp in eos_picks:
                grown = live[source].extended(EOS_ID, token_lp, finished=True)
                # Drop the EOS token itself from the surface sequence.
                finished.append(
                    Hypothesis(grown.token_ids[:-1], grown.log_prob, finished=True)
                )
            if not continuations:
                break
            state = new_state.select(np.array([source for source, _, _ in continuations]))
            live = [
                live[source].extended(token, token_lp, finished=False)
                for source, token, token_lp in continuations
            ]

            if should_stop_row(
                finished,
                [hyp.log_prob for hyp in live],
                step + 1,
                beam_size,
                max_length,
                length_penalty,
            ):
                break

        if not finished:
            finished = [Hypothesis(h.token_ids, h.log_prob, finished=False) for h in live]
        return max(finished, key=lambda h: h.score(length_penalty))
