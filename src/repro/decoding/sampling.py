"""Stochastic decoding: temperature and top-k sampling.

An extension beyond the paper's beam search, useful for generating *diverse*
question sets from one source (e.g. building QA training data, one of the
applications the paper's introduction motivates).
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import Batch
from repro.data.vocabulary import BOS_ID, EOS_ID, PAD_ID
from repro.decoding.hypothesis import Hypothesis
from repro.models.base import QuestionGenerator
from repro.tensor.core import no_grad

__all__ = ["sample_decode"]


def sample_decode(
    model: QuestionGenerator,
    batch: Batch,
    rng: np.random.Generator,
    temperature: float = 1.0,
    top_k: int | None = None,
    max_length: int = 30,
) -> list[Hypothesis]:
    """Sample one sequence per batch example.

    Parameters
    ----------
    rng:
        Source of randomness (pass a seeded generator for reproducibility).
    temperature:
        Softmax temperature; < 1 sharpens toward greedy, > 1 flattens.
    top_k:
        If set, sample only among the k most probable tokens per step.
    """
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    if top_k is not None and top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")

    model.eval()
    with no_grad():
        context = model.encode(batch)
        state = model.initial_decoder_state(context)
        batch_size = context.batch_size
        prev = np.full(batch_size, BOS_ID, dtype=np.int64)
        sequences: list[list[int]] = [[] for _ in range(batch_size)]
        log_probs = np.zeros(batch_size)
        finished = np.zeros(batch_size, dtype=bool)

        for _ in range(max_length):
            step_lp, state = model.step_log_probs(prev, state, context)
            step_lp[:, PAD_ID] = -np.inf
            step_lp[:, BOS_ID] = -np.inf

            scaled = step_lp / temperature  # numerics: ok — temperature validated > 0 above
            choices = np.empty(batch_size, dtype=np.int64)
            for row in range(batch_size):
                row_scores = scaled[row]
                if top_k is not None:
                    keep = np.argpartition(-row_scores, min(top_k, row_scores.size - 1))[:top_k]
                    mask = np.full_like(row_scores, -np.inf)
                    mask[keep] = row_scores[keep]
                    row_scores = mask
                shifted = row_scores - row_scores.max()
                probs = np.exp(shifted)  # numerics: ok — shifted <= 0, exp cannot overflow
                probs /= probs.sum()  # numerics: ok — max element contributes exp(0) = 1
                choices[row] = rng.choice(len(probs), p=probs)

            chosen_lp = step_lp[np.arange(batch_size), choices]
            for row in range(batch_size):
                if finished[row]:
                    continue
                log_probs[row] += chosen_lp[row]
                if choices[row] == EOS_ID:
                    finished[row] = True
                    continue
                sequences[row].append(int(choices[row]))
            if finished.all():
                break
            prev = np.where(finished, EOS_ID, choices)

    return [
        Hypothesis(tuple(sequences[row]), float(log_probs[row]), finished=bool(finished[row]))
        for row in range(batch_size)
    ]
