"""Decode-time post-processing.

:func:`replace_unknowns` implements the classic OpenNMT ``-replace_unk``
trick that attention-only systems (like the Du et al. baseline) use to
patch over their lack of a copy mechanism: every generated ``<unk>`` is
replaced by the source token that received the most attention at that step.
The ACNN makes this unnecessary — its copy path produces the source token
directly — which is exactly the comparison the UNK-replacement ablation
draws.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import Batch
from repro.data.vocabulary import BOS_ID, EOS_ID, PAD_ID, UNK_ID, Vocabulary
from repro.decoding.hypothesis import Hypothesis, extended_ids_to_tokens
from repro.models.base import QuestionGenerator
from repro.models.du_attention import DuAttentionModel
from repro.tensor.core import no_grad

__all__ = ["replace_unknowns", "greedy_decode_with_attention"]


def greedy_decode_with_attention(
    model: DuAttentionModel,
    batch: Batch,
    max_length: int = 30,
) -> tuple[list[Hypothesis], list[list[np.ndarray]]]:
    """Greedy decode recording per-step attention (for UNK replacement).

    Returns the hypotheses plus, per example, one attention vector per
    emitted token.
    """
    model.eval()
    with no_grad():
        context = model.encode(batch)
        state = model.initial_decoder_state(context)
        batch_size = context.batch_size
        prev = np.full(batch_size, BOS_ID, dtype=np.int64)
        sequences: list[list[int]] = [[] for _ in range(batch_size)]
        attentions: list[list[np.ndarray]] = [[] for _ in range(batch_size)]
        log_probs = np.zeros(batch_size)
        finished = np.zeros(batch_size, dtype=bool)

        for _ in range(max_length):
            token_ids = model.map_to_decoder_vocab(prev, model.decoder_vocab_size, UNK_ID)
            embedded = model.decoder_embedding(token_ids)
            _, _, attn, logits, new_states = model._decode_step(
                embedded, state.lstm_states, context.encoder_states, context.src_pad_mask
            )
            from repro.models.base import DecoderStepState
            from repro.tensor.ops import log_softmax

            state = DecoderStepState(new_states)
            step_lp = log_softmax(logits, axis=-1).data
            step_lp[:, PAD_ID] = -np.inf
            step_lp[:, BOS_ID] = -np.inf
            choices = step_lp.argmax(axis=1)
            chosen_lp = step_lp[np.arange(batch_size), choices]
            for row in range(batch_size):
                if finished[row]:
                    continue
                log_probs[row] += chosen_lp[row]
                if choices[row] == EOS_ID:
                    finished[row] = True
                    continue
                sequences[row].append(int(choices[row]))
                attentions[row].append(attn.data[row].copy())
            if finished.all():
                break
            prev = np.where(finished, EOS_ID, choices)

    hypotheses = [
        Hypothesis(tuple(sequences[row]), float(log_probs[row]), finished=bool(finished[row]))
        for row in range(batch_size)
    ]
    return hypotheses, attentions


def replace_unknowns(
    tokens: list[str],
    attentions: list[np.ndarray],
    source_tokens: tuple[str, ...],
) -> list[str]:
    """Replace each ``<unk>`` with the most-attended source token.

    Parameters
    ----------
    tokens:
        Generated surface tokens.
    attentions:
        One ``(S,)`` attention vector per token (from
        :func:`greedy_decode_with_attention`).
    source_tokens:
        The source sequence the attention points into.
    """
    from repro.data.vocabulary import UNK

    if len(tokens) != len(attentions):
        raise ValueError(f"{len(tokens)} tokens vs {len(attentions)} attention vectors")
    replaced: list[str] = []
    for token, attention in zip(tokens, attentions):
        window = np.asarray(attention)[: len(source_tokens)]
        if token == UNK and window.size and np.isfinite(window).any():
            # NaN attention weights must not win the argmax; mask them out.
            window = np.where(np.isfinite(window), window, -np.inf)
            replaced.append(source_tokens[int(np.argmax(window))])
        else:
            replaced.append(token)
    return replaced
