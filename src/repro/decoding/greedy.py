"""Greedy (argmax) decoding — the beam-size-1 special case, batched."""

from __future__ import annotations

import numpy as np

from repro.data.batching import Batch
from repro.data.vocabulary import BOS_ID, EOS_ID, PAD_ID
from repro.decoding.hypothesis import Hypothesis
from repro.models.base import NonFiniteLogits, QuestionGenerator
from repro.tensor.core import no_grad
from repro.tensor.lazy import compile_graph, resolve_fusion

__all__ = ["greedy_decode"]


def greedy_decode(
    model: QuestionGenerator,
    batch: Batch,
    max_length: int = 30,
    deadline=None,
    fusion: bool | None = None,
) -> list[Hypothesis]:
    """Decode every example in the batch greedily.

    Returns one finished :class:`Hypothesis` per example; sequences that hit
    ``max_length`` without emitting EOS are returned unfinished.

    ``deadline`` is the same cooperative budget the beam engine accepts
    (an object with ``check()``, consulted before the encode and once per
    step); a NaN decode step raises the typed
    :class:`~repro.models.base.NonFiniteLogits`.

    ``fusion`` stages the step loop through
    :func:`~repro.tensor.lazy.compile_graph` (trace once per shape
    signature, replay through arena buffers); ``None`` defers to the
    process-wide default. Outputs are identical either way.
    """
    step_fn = model.step_log_probs
    if resolve_fusion(fusion):
        step_fn = compile_graph(step_fn)

    model.eval()
    with no_grad():
        if deadline is not None:
            deadline.check()
        context = model.encode(batch)
        state = model.initial_decoder_state(context)
        batch_size = context.batch_size

        prev = np.full(batch_size, BOS_ID, dtype=np.int64)
        sequences: list[list[int]] = [[] for _ in range(batch_size)]
        log_probs = np.zeros(batch_size)
        finished = np.zeros(batch_size, dtype=bool)

        for step in range(max_length):
            if deadline is not None:
                deadline.check()
            step_lp, state = step_fn(prev, state, context)
            nan_rows = np.isnan(step_lp).any(axis=1)
            if nan_rows.any():
                raise NonFiniteLogits("step_log_probs", step=step, rows=int(nan_rows.sum()))
            step_lp[:, PAD_ID] = -np.inf
            step_lp[:, BOS_ID] = -np.inf
            choices = step_lp.argmax(axis=1)
            chosen_lp = step_lp[np.arange(batch_size), choices]
            for row in range(batch_size):
                if finished[row]:
                    continue
                log_probs[row] += chosen_lp[row]
                if choices[row] == EOS_ID:
                    # EOS contributes to the score (as in beam search) but
                    # is not part of the surface sequence.
                    finished[row] = True
                    continue
                sequences[row].append(int(choices[row]))
            if finished.all():
                break
            # Finished rows keep feeding EOS; it no longer affects them.
            prev = np.where(finished, EOS_ID, choices)

    return [
        Hypothesis(tuple(sequences[row]), float(log_probs[row]), finished=bool(finished[row]))
        for row in range(batch_size)
    ]
