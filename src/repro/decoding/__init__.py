"""Decoding: greedy and beam search over the incremental model interface."""

from repro.decoding.batched_beam import batched_beam_decode, batched_beam_search
from repro.decoding.beam import beam_decode, beam_decode_example
from repro.decoding.greedy import greedy_decode
from repro.decoding.hypothesis import Hypothesis, extended_ids_to_tokens
from repro.decoding.nbest import beam_decode_nbest
from repro.decoding.postprocess import greedy_decode_with_attention, replace_unknowns
from repro.decoding.sampling import sample_decode

__all__ = [
    "batched_beam_decode",
    "batched_beam_search",
    "beam_decode",
    "beam_decode_example",
    "greedy_decode",
    "Hypothesis",
    "extended_ids_to_tokens",
    "beam_decode_nbest",
    "greedy_decode_with_attention",
    "replace_unknowns",
    "sample_decode",
]
