"""Decoding hypothesis bookkeeping shared by greedy and beam search."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.vocabulary import Vocabulary

__all__ = ["Hypothesis", "extended_ids_to_tokens"]


@dataclass(frozen=True)
class Hypothesis:
    """A (possibly finished) decoded sequence with its cumulative score."""

    token_ids: tuple[int, ...]
    log_prob: float
    finished: bool = False

    def score(self, length_penalty: float) -> float:
        """Length-normalized score: ``log_prob / len**length_penalty``.

        ``length_penalty = 0`` is the raw sum of log-probabilities;
        ``1`` is the per-token average (the default used here, standard for
        beam-searched NQG systems).
        """
        length = max(1, len(self.token_ids))
        return self.log_prob / (length ** length_penalty)  # numerics: ok — hypothesis length >= 1

    def extended(self, token_id: int, log_prob: float, finished: bool) -> "Hypothesis":
        return Hypothesis(
            token_ids=self.token_ids + (token_id,),
            log_prob=self.log_prob + log_prob,
            finished=finished,
        )


def extended_ids_to_tokens(
    ids: tuple[int, ...] | list[int],
    decoder_vocab: Vocabulary,
    oov_tokens: tuple[str, ...],
) -> list[str]:
    """Map extended-vocabulary ids back to surface tokens.

    Ids below the decoder vocabulary size resolve through the vocabulary;
    ids at or above it index the example's source-OOV list (the copy
    mechanism's output slots).
    """
    vocab_size = len(decoder_vocab)
    tokens: list[str] = []
    for token_id in ids:
        if token_id < vocab_size:
            tokens.append(decoder_vocab.id_to_token(token_id))
        else:
            oov_index = token_id - vocab_size
            if oov_index >= len(oov_tokens):
                raise IndexError(
                    f"extended id {token_id} exceeds the OOV list "
                    f"(size {len(oov_tokens)}, vocab {vocab_size})"
                )
            tokens.append(oov_tokens[oov_index])
    return tokens
