"""Batch-parallel beam search engine.

The paper decodes everything with beam size 3, so beam search is the hot
path of the whole evaluation pipeline. The classic per-example beam
(:func:`repro.decoding.beam.beam_decode_example`) calls ``step_log_probs``
with only ``beam_size`` rows per step, leaving the numpy backend's batched
matmuls idle. This engine decodes all ``B`` examples of a batch at once:

- the hypothesis frontier is a flattened ``(B * beam_size,)`` row block —
  frontier row ``i`` belongs to example ``i // beam_size`` and beam slot
  ``i % beam_size``; live hypotheses always occupy the *leading* slots of
  their example's block, dead slots are masked to ``-inf``;
- encoder tensors are expanded **once** via
  :func:`repro.models.base.expand_encoder_context` instead of re-gathered
  with ``row_indices`` on every step;
- top-k candidate selection runs as a single ``argpartition`` over the
  ``(B, beam_size * V_ext)`` score matrix for all examples at once;
- recurrent state is reordered with one
  :meth:`~repro.models.base.DecoderStepState.select` per step;
- each example keeps its own finished pool and early-stop flag, so short
  examples stop expanding while long ones continue.

The candidate walk and the stopping rule live here as the *canonical*
definitions (:func:`select_step_candidates`, :func:`should_stop_row`) and
are shared with the per-example beam, which guarantees the two paths return
identical hypotheses. Two decode-path fixes are part of these definitions:

1. **Optimistic early stop.** Under length normalization
   (``score = log_prob / len**penalty``) a live hypothesis's score can
   still *rise* as it grows, so comparing the best finished score against
   the best live *current* score prunes prematurely. The stop rule instead
   uses the standard OpenNMT/GNMT-style optimistic bound: the live raw
   log-probability normalized at whichever future length maximizes it.
2. **Adaptive candidate scan.** The scan over ranked candidates widens past
   the initial ``2 * beam_size`` window whenever it has not yet found
   ``beam_size`` viable continuations, so a window full of EOS finishes or
   non-viable junk (``-inf`` control tokens, unreachable OOV slots at
   :data:`~repro.models.base.OOV_LOG_FLOOR`) no longer kills the beam while
   expandable candidates remain further down the ranking.
"""

from __future__ import annotations

import time

import numpy as np

from repro.data.batching import Batch
from repro.data.vocabulary import BOS_ID, EOS_ID, PAD_ID
from repro.decoding.hypothesis import Hypothesis
from repro.models.base import (
    NonFiniteLogits,
    OOV_LOG_FLOOR,
    QuestionGenerator,
    expand_encoder_context,
)
from repro.observability import Telemetry, emit_gate_statistics, get_telemetry, nonfinite_sentinel
from repro.tensor.core import no_grad
from repro.tensor.lazy import compile_graph, resolve_fusion

__all__ = [
    "NON_VIABLE_FLOOR",
    "batched_beam_decode",
    "batched_beam_search",
    "select_step_candidates",
    "should_stop_row",
]

NON_VIABLE_FLOOR = OOV_LOG_FLOOR / 10
"""Step log-probabilities at or below this are never selected as
candidates: they mark unreachable slots (models without a copy path stamp
their OOV columns with :data:`~repro.models.base.OOV_LOG_FLOOR`), not real
probability mass."""


def select_step_candidates(
    totals: np.ndarray,
    step_lp: np.ndarray,
    beam_size: int,
    order: np.ndarray | None = None,
) -> tuple[list[tuple[int, float]], list[tuple[int, int, float]]]:
    """Pick one step's EOS finishes and live continuations for one example.

    Parameters
    ----------
    totals:
        ``(width, V_ext)`` cumulative candidate scores (step log-probs plus
        the source hypothesis's log-prob).
    step_lp:
        ``(width, V_ext)`` this step's log-probs (used for viability and for
        the per-token increment).
    beam_size:
        Number of live continuations to collect.
    order:
        Optional precomputed candidate ranking (flat indices into
        ``totals``, best first) — the batched engine passes the slice of its
        shared vectorized top-k. Must cover at least the top
        ``min(2 * beam_size, totals.size)`` candidates.

    Returns
    -------
    finished, live:
        ``finished`` is ``[(source, token_log_prob), ...]`` for every EOS
        candidate ranked above the point where the walk stopped; ``live`` is
        ``[(source, token, token_log_prob), ...]``, at most ``beam_size``
        long. Both lists are in descending candidate-score order, ties
        broken by flat candidate index (deterministic).

    The walk widens its scan past the initial ``2 * beam_size`` window until
    it has ``beam_size`` live continuations or has ranked every candidate —
    a window monopolized by EOS/non-viable entries cannot starve the beam.
    """
    flat = totals.reshape(-1)
    v_ext = totals.shape[1]
    total = flat.size
    scan = min(2 * beam_size, total)

    while True:
        if order is not None and order.size >= scan:
            ranked = order[:scan]
        elif scan >= total:
            ranked = np.argsort(-flat, kind="stable")
        else:
            window = np.argpartition(-flat, scan - 1)[:scan]
            ranked = window[np.lexsort((window, -flat[window]))]

        finished: list[tuple[int, float]] = []
        live: list[tuple[int, int, float]] = []
        for flat_index in ranked:
            source, token = divmod(int(flat_index), v_ext)
            token_lp = float(step_lp[source, token])
            if not np.isfinite(token_lp) or token_lp <= NON_VIABLE_FLOOR:
                continue
            if token == EOS_ID:
                finished.append((source, token_lp))
                continue
            live.append((source, token, token_lp))
            if len(live) == beam_size:
                break
        if len(live) == beam_size or scan >= total:
            return finished, live
        # Not enough viable continuations in this window: widen and redo the
        # walk from scratch (restarting keeps the result independent of the
        # window sequence, so per-example and batched paths agree).
        scan = min(2 * scan, total)
        order = None


def should_stop_row(
    finished: list[Hypothesis],
    live_log_probs: list[float],
    current_length: int,
    beam_size: int,
    max_length: int,
    length_penalty: float,
) -> bool:
    """Early-stop rule for one example's beam.

    Stops only when the finished pool is full *and* the best finished
    normalized score beats every live hypothesis's **optimistic bound**: its
    raw log-probability normalized at whichever reachable length maximizes
    the score. Raw log-probs only decrease, but under a positive length
    penalty the normalizer grows with length, so a live (negative) score can
    still rise — comparing against the live *current* score (the old rule)
    prunes hypotheses that would have won.
    """
    if len(finished) < beam_size or not live_log_probs:
        return False
    best_finished = max(h.score(length_penalty) for h in finished)
    norm_now = max(1, current_length) ** length_penalty
    norm_max = max(1, max_length) ** length_penalty
    best_bound = max(
        max(lp / norm_now, lp / norm_max) for lp in live_log_probs  # numerics: ok — length-penalty norms are >= 1
    )
    return best_finished >= best_bound


def batched_beam_search(
    model: QuestionGenerator,
    batch: Batch,
    beam_size: int = 3,
    max_length: int = 30,
    length_penalty: float = 1.0,
    telemetry: Telemetry | None = None,
    deadline=None,
    fusion: bool | None = None,
) -> list[list[Hypothesis]]:
    """Beam-decode every example simultaneously; returns ranked pools.

    ``fusion`` opts the step loop into lazy kernel fusion
    (:mod:`repro.tensor.lazy`): the step function is staged with
    :func:`~repro.tensor.lazy.compile_graph`, so the first step per shape
    signature traces the op graph and later steps replay through
    preallocated arena buffers. ``None`` defers to the process-wide
    default (``set_fusion_enabled``); hypotheses are identical either way
    (the fused kernels are byte-identical to the eager tape).

    The result has one list per example, sorted best-first by normalized
    score (ties keep finish order). Pools hold the finished hypotheses the
    beam collected; an example whose beam hit ``max_length`` without
    finishing returns its live hypotheses unfinished, like the per-example
    beam.

    ``deadline`` is an optional cooperative budget (any object with a
    ``check()`` method, e.g. :class:`repro.serving.deadline.Deadline`):
    it is consulted before the encode and once per beam step, and its own
    typed error propagates the moment the budget is exhausted — the
    serving layer catches it to fall down the degradation ladder.

    A decode step that produces NaN log-probabilities raises the typed
    :class:`~repro.models.base.NonFiniteLogits` (after firing a
    ``health.decode.logits`` sentinel) instead of silently starving the
    beam and returning empty hypotheses.

    Each call reports one ``decode.batch`` span (with an ``encode`` child),
    step/token counters, and tokens-per-second / hypotheses-per-second
    gauges through ``telemetry`` (the ambient hub when not given).
    """
    if beam_size < 1:
        raise ValueError(f"beam_size must be >= 1, got {beam_size}")

    tel = telemetry if telemetry is not None else get_telemetry()
    decode_start = time.perf_counter()
    steps_run = 0
    tokens_generated = 0

    step_fn = model.step_log_probs
    if resolve_fusion(fusion):
        step_fn = compile_graph(step_fn)

    model.eval()
    with no_grad(), tel.span(
        "decode.batch", extra={"examples": batch.size, "beam_size": beam_size}
    ) as span_info:
        if deadline is not None:
            deadline.check()
        with tel.span("encode"):
            context = model.encode(batch)
        num_examples = context.batch_size
        expanded = expand_encoder_context(context, beam_size)
        state = model.initial_decoder_state(expanded)

        live: list[list[Hypothesis]] = [[Hypothesis((), 0.0)] for _ in range(num_examples)]
        finished: list[list[Hypothesis]] = [[] for _ in range(num_examples)]
        done = np.zeros(num_examples, dtype=bool)
        # Frontier bookkeeping: slot j of example r is frontier row
        # r * beam_size + j; only the first len(live[r]) slots are alive.
        prev = np.full(num_examples * beam_size, BOS_ID, dtype=np.int64)
        live_lp = np.full((num_examples, beam_size), -np.inf)
        live_lp[:, 0] = 0.0

        for step in range(max_length):
            if done.all():
                break
            if deadline is not None:
                deadline.check()
            step_lp, new_state = step_fn(prev, state, expanded)
            steps_run += 1
            nan_rows = np.isnan(step_lp).any(axis=1)
            if nan_rows.any():
                nonfinite_sentinel(
                    tel, "decode.logits", float("nan"), phase="beam", beam_step=step
                )
                raise NonFiniteLogits("step_log_probs", step=step, rows=int(nan_rows.sum()))
            step_lp[:, PAD_ID] = -np.inf
            step_lp[:, BOS_ID] = -np.inf
            v_ext = step_lp.shape[1]
            step_rows = step_lp.reshape(num_examples, beam_size, v_ext)
            totals = step_rows + live_lp[:, :, None]

            # One vectorized top-k over (B, beam_size * V_ext) for all rows;
            # the python walk below only touches these few candidates.
            flat = totals.reshape(num_examples, beam_size * v_ext)
            scan = min(2 * beam_size, flat.shape[1])
            window = np.argpartition(-flat, scan - 1, axis=1)[:, :scan]
            window_vals = np.take_along_axis(flat, window, axis=1)
            rank = np.lexsort((window, -window_vals), axis=1)
            ranked = np.take_along_axis(window, rank, axis=1)

            select = np.arange(num_examples * beam_size, dtype=np.int64)
            next_prev = np.full(num_examples * beam_size, EOS_ID, dtype=np.int64)
            next_lp = np.full((num_examples, beam_size), -np.inf)
            for r in range(num_examples):
                if done[r]:
                    continue
                width = len(live[r])
                # Restrict the shared ranking to the example's live slots:
                # their flat indices coincide with the (width, V_ext)
                # candidate matrix the per-example beam builds, so the walk
                # sees identical candidates. If dead -inf slots crowded the
                # window (possible only while width < beam_size), the walk
                # recomputes its own ranking over the live slice.
                order = ranked[r]
                if width < beam_size:
                    order = order[order < width * v_ext]
                eos_picks, continuations = select_step_candidates(
                    totals[r, :width],
                    step_rows[r, :width],
                    beam_size,
                    order=order,
                )
                for source, token_lp in eos_picks:
                    grown = live[r][source].extended(EOS_ID, token_lp, finished=True)
                    # The EOS token scores but never surfaces.
                    finished[r].append(
                        Hypothesis(grown.token_ids[:-1], grown.log_prob, finished=True)
                    )
                if not continuations:
                    done[r] = True
                    continue
                base = r * beam_size
                new_live: list[Hypothesis] = []
                for j, (source, token, token_lp) in enumerate(continuations):
                    grown = live[r][source].extended(token, token_lp, finished=False)
                    new_live.append(grown)
                    select[base + j] = base + source
                    next_prev[base + j] = token
                    next_lp[r, j] = grown.log_prob
                live[r] = new_live
                tokens_generated += len(new_live)
                if should_stop_row(
                    finished[r],
                    [h.log_prob for h in new_live],
                    step + 1,
                    beam_size,
                    max_length,
                    length_penalty,
                ):
                    done[r] = True
            state = new_state.select(select)
            prev = next_prev
            live_lp = next_lp

        pools: list[list[Hypothesis]] = []
        for r in range(num_examples):
            pool = finished[r] or [
                Hypothesis(h.token_ids, h.log_prob, finished=False) for h in live[r]
            ]
            pools.append(sorted(pool, key=lambda h: -h.score(length_penalty)))

        elapsed = time.perf_counter() - decode_start
        span_info["steps"] = steps_run
        span_info["tokens"] = tokens_generated
        tel.counter("decode.steps", steps_run)
        tel.throughput("decode.tokens", tokens_generated, elapsed)
        tel.throughput("decode.hypotheses", num_examples, elapsed)
        if hasattr(model, "pop_decode_gate_stats"):
            emit_gate_statistics(tel, "decode.gate", model.pop_decode_gate_stats())
        return pools


def batched_beam_decode(
    model: QuestionGenerator,
    batch: Batch,
    beam_size: int = 3,
    max_length: int = 30,
    length_penalty: float = 1.0,
    telemetry: Telemetry | None = None,
    deadline=None,
    fusion: bool | None = None,
) -> list[Hypothesis]:
    """Best hypothesis per example, via the batch-parallel engine."""
    pools = batched_beam_search(
        model,
        batch,
        beam_size=beam_size,
        max_length=max_length,
        length_penalty=length_penalty,
        telemetry=telemetry,
        deadline=deadline,
        fusion=fusion,
    )
    return [pool[0] for pool in pools]
