"""N-best beam decoding.

Question generation's flagship application (per the paper's introduction) is
producing question-answer pairs at scale for QA training; for that you want
*several* candidate questions per source, not just the best one.
:func:`beam_decode_nbest` exposes the full finished pool of the beam.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import Batch
from repro.data.vocabulary import BOS_ID, EOS_ID, PAD_ID
from repro.decoding.batched_beam import select_step_candidates, should_stop_row
from repro.decoding.hypothesis import Hypothesis
from repro.models.base import EncoderContext, QuestionGenerator
from repro.tensor.core import no_grad

__all__ = ["beam_decode_nbest"]


def beam_decode_nbest(
    model: QuestionGenerator,
    batch: Batch,
    n_best: int = 3,
    beam_size: int | None = None,
    max_length: int = 30,
    length_penalty: float = 1.0,
) -> list[list[Hypothesis]]:
    """Return up to ``n_best`` finished hypotheses per example, best first.

    ``beam_size`` defaults to ``n_best`` (a beam can finish at most about
    ``beam_size`` distinct hypotheses per step, so ask for a wider beam if
    you need guaranteed-deep n-best lists).
    """
    if n_best < 1:
        raise ValueError(f"n_best must be >= 1, got {n_best}")
    beam_size = beam_size or n_best

    model.eval()
    with no_grad():
        context = model.encode(batch)
        return [
            _nbest_for_example(
                model, context, index, n_best, beam_size, max_length, length_penalty
            )
            for index in range(context.batch_size)
        ]


def _nbest_for_example(
    model: QuestionGenerator,
    context: EncoderContext,
    example_index: int,
    n_best: int,
    beam_size: int,
    max_length: int,
    length_penalty: float,
) -> list[Hypothesis]:
    live = [Hypothesis((), 0.0)]
    state = model.initial_decoder_state(context).select(np.array([example_index]))
    finished: list[Hypothesis] = []

    for step in range(max_length):
        width = len(live)
        prev = np.array(
            [hyp.token_ids[-1] if hyp.token_ids else BOS_ID for hyp in live],
            dtype=np.int64,
        )
        rows = np.full(width, example_index)
        step_lp, new_state = model.step_log_probs(prev, state, context, row_indices=rows)
        step_lp[:, PAD_ID] = -np.inf
        step_lp[:, BOS_ID] = -np.inf

        totals = step_lp + np.array([hyp.log_prob for hyp in live])[:, None]
        eos_picks, continuations = select_step_candidates(totals, step_lp, beam_size)
        for source, token_lp in eos_picks:
            grown = live[source].extended(EOS_ID, token_lp, finished=True)
            finished.append(
                Hypothesis(grown.token_ids[:-1], grown.log_prob, finished=True)
            )

        if not continuations:
            break
        state = new_state.select(np.array([source for source, _, _ in continuations]))
        live = [
            live[source].extended(token, token_lp, finished=False)
            for source, token, token_lp in continuations
        ]
        # Same stopping rule as beam_decode (optimistic live bound), but the
        # pool must cover the requested n-best depth before stopping.
        if should_stop_row(
            finished,
            [hyp.log_prob for hyp in live],
            step + 1,
            max(n_best, beam_size),
            max_length,
            length_penalty,
        ):
            break

    if not finished:
        finished = [Hypothesis(h.token_ids, h.log_prob, finished=False) for h in live]

    # Deduplicate surface forms, rank by normalized score.
    unique: dict[tuple[int, ...], Hypothesis] = {}
    for hypothesis in finished:
        existing = unique.get(hypothesis.token_ids)
        if existing is None or hypothesis.log_prob > existing.log_prob:
            unique[hypothesis.token_ids] = hypothesis
    ranked = sorted(unique.values(), key=lambda h: -h.score(length_penalty))
    return ranked[:n_best]
