"""Reproduction of "Learning to Generate Questions with Adaptive Copying
Neural Networks" (Lu & Guo, 2019).

Top-level layout:

- :mod:`repro.tensor` — from-scratch reverse-mode autodiff over numpy.
- :mod:`repro.nn` — neural layers (LSTM, attention, embeddings, losses).
- :mod:`repro.optim` — SGD/Adam, clipping, the paper's LR schedule.
- :mod:`repro.data` — tokenizer, vocabularies, SQuAD loaders, synthetic
  SQuAD-style corpus, batching, embeddings.
- :mod:`repro.models` — Seq2Seq baseline, Du et al. attention baseline, and
  the paper's ACNN with copy mechanism and adaptive switch gate.
- :mod:`repro.decoding` — greedy and beam-search decoding.
- :mod:`repro.metrics` — BLEU-n and ROUGE-L.
- :mod:`repro.training` / :mod:`repro.evaluation` — training and evaluation
  harnesses.
- :mod:`repro.experiments` — runners that regenerate each paper table.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
