"""Tape profiling: count autograd nodes and activation footprint.

The numpy backend's throughput is governed by how many Python-level tape
nodes a forward pass creates (see docs/architecture.md); this context
manager makes that measurable:

    with TapeProfile() as profile:
        loss = model.loss(batch)
    print(profile.nodes, profile.elements)

Used by the microbenchmarks and by tests that pin the fused-LSTM node
budget so a refactor cannot silently reintroduce per-step op explosions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tensor import core

__all__ = ["TapeProfile"]


@dataclass
class TapeProfile:
    """Counts graph nodes created while the context is active."""

    nodes: int = 0
    """Number of tape nodes (op outputs that require grad)."""
    elements: int = 0
    """Total scalar elements across those outputs (activation footprint)."""
    arena_hits: int = 0
    """Lazy-mode arena buffer reuses (replayed steps; no allocation)."""
    arena_misses: int = 0
    """Lazy-mode arena buffer allocations (trace phase of a signature)."""
    arena_bytes: int = 0
    """Bytes newly allocated by arena misses while profiling."""

    def __enter__(self) -> "TapeProfile":
        core._PROFILES.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        core._PROFILES.remove(self)

    def record(self, size: int) -> None:
        self.nodes += 1
        self.elements += size

    def record_arena(self, hit: bool, nbytes: int) -> None:
        """Called by :class:`repro.tensor.lazy.Arena` on every buffer request."""
        if hit:
            self.arena_hits += 1
        else:
            self.arena_misses += 1
            self.arena_bytes += nbytes
