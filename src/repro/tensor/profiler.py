"""Tape profiling: count autograd nodes and activation footprint.

The numpy backend's throughput is governed by how many Python-level tape
nodes a forward pass creates (see docs/architecture.md); this context
manager makes that measurable:

    with TapeProfile() as profile:
        loss = model.loss(batch)
    print(profile.nodes, profile.elements)

Used by the microbenchmarks and by tests that pin the fused-LSTM node
budget so a refactor cannot silently reintroduce per-step op explosions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tensor import core

__all__ = ["TapeProfile"]


@dataclass
class TapeProfile:
    """Counts graph nodes created while the context is active."""

    nodes: int = 0
    """Number of tape nodes (op outputs that require grad)."""
    elements: int = 0
    """Total scalar elements across those outputs (activation footprint)."""

    def __enter__(self) -> "TapeProfile":
        core._PROFILES.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        core._PROFILES.remove(self)

    def record(self, size: int) -> None:
        self.nodes += 1
        self.elements += size
