"""Reverse-mode automatic differentiation core.

This module provides :class:`Tensor`, a thin wrapper around ``numpy.ndarray``
that records the operations applied to it on a dynamic tape, plus the handful
of arithmetic/structural primitives that back the operator dunders. All other
differentiable operations (activations, softmax, embedding lookups, ...) live
in :mod:`repro.tensor.ops` and are built from the same machinery.

The design mirrors the usual define-by-run autograd pattern: each operation
produces a new :class:`Tensor` holding references to its parents and a closure
that propagates the output gradient to them. Calling :meth:`Tensor.backward`
performs a topological sort of the recorded graph and accumulates gradients.
"""

from __future__ import annotations

import functools
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "Tensor",
    "ensure_tensor",
    "no_grad",
    "is_grad_enabled",
    "DEFAULT_DTYPE",
]

DEFAULT_DTYPE = np.float64

# Module-level switch flipped by the ``no_grad`` context manager. When False,
# newly created tensors never record parents, which makes inference cheap.
_GRAD_ENABLED = True

# Active TapeProfile instances (see repro.tensor.profiler). Normally empty,
# so the per-op overhead is one falsy check.
_PROFILES: list = []

# Active anomaly-detection states (see repro.tensor.anomaly). Normally empty;
# while a ``detect_anomaly()`` context is open, every op records provenance
# and checks its forward output, and every gradient write is checked.
_ANOMALY: list = []


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd tape."""
    return _GRAD_ENABLED


class no_grad:
    """Context manager / decorator that disables tape recording.

    Mirrors the familiar framework idiom::

        with no_grad():
            logits = model(batch)   # no graph is built

        @no_grad()
        def decode(batch): ...     # the whole function runs tape-free

    Saved state lives on a per-entry stack, so one instance can be nested
    inside itself (serving wraps the engines, which wrap their own step
    loops) and an exception anywhere in the block restores the previous
    mode correctly.
    """

    def __init__(self) -> None:
        self._saved: list[bool] = []

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._saved.append(_GRAD_ENABLED)
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._saved.pop()

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with self:
                return fn(*args, **kwargs)

        return wrapper


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting.

    When a forward op broadcast an operand up to a larger shape, the gradient
    flowing back must be summed over the broadcast axes to recover the
    operand's own gradient.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts. Floating data is kept in
        ``DEFAULT_DTYPE`` unless an explicit float dtype is already set.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    name:
        Optional label used in ``repr`` and error messages.
    """

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_backward_fn",
        "_parents",
        "name",
        "_provenance",
    )

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        name: str = "",
    ) -> None:
        array = np.asarray(data)
        if array.dtype.kind not in "fc":
            array = array.astype(DEFAULT_DTYPE)
        self.data: np.ndarray = array
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self._backward_fn: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        grad = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad}{label})"

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else _raise_item(self)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Clear any accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _from_op(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fn: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create the output tensor of a differentiable operation.

        ``backward_fn`` receives the gradient with respect to the output and
        is responsible for calling ``parent._accumulate_grad`` on each parent
        that requires a gradient.
        """
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward_fn = backward_fn
            if _PROFILES:
                for profile in _PROFILES:
                    profile.record(out.data.size)
        if _ANOMALY:
            for state in _ANOMALY:
                state.on_op(out, tuple(parents), backward_fn)
        return out

    def _accumulate_grad(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad), self.data.shape)
        if _ANOMALY:
            for state in _ANOMALY:
                state.on_grad(self, grad)
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def _grad_buffer(self) -> np.ndarray:
        """The gradient array, allocated (zeroed) on first use.

        Indexing-style ops (slicing, embedding gathers) accumulate into this
        buffer directly instead of materializing a dense zero gradient per
        backward call — the difference between O(slice) and O(tensor) work
        per recurrent timestep. Writers must go through
        :meth:`_scatter_grad` so anomaly detection still sees the write.
        """
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        return self.grad

    def _scatter_grad(self, key, grad: np.ndarray, basic: bool = False) -> None:
        """Indexed gradient accumulation through the anomaly-checked path.

        The sparse twin of :meth:`_accumulate_grad`: embedding gathers,
        ``gather_rows`` and slicing scatter into :meth:`_grad_buffer`
        instead of materializing dense gradients, but the write must not
        bypass :func:`~repro.tensor.anomaly.detect_anomaly` — both the
        incoming gradient and the updated buffer region are checked (the
        buffer check catches non-finites *minted by the accumulation
        itself*, e.g. two large finite updates at one index overflowing
        to inf). ``basic=True`` uses the fast non-aliasing ``+=`` path for
        basic (int/slice) indexing; otherwise ``np.add.at`` handles
        repeated indices.
        """
        if not self.requires_grad:
            return
        grad = np.asarray(grad)
        anomaly_states = _ANOMALY
        if anomaly_states:
            for state in anomaly_states:
                state.on_grad(self, grad)
        buffer = self._grad_buffer()
        if basic:
            buffer[key] += grad
        else:
            np.add.at(buffer, key, grad)
        if anomaly_states:
            written = buffer[key] if basic else buffer
            for state in anomaly_states:
                state.on_grad(self, written)

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ones (i.e. ``d self / d self``); for scalar losses
            this is the conventional seed of 1.0.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"seed gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
                )

        ordered = self._topological_order()
        self._accumulate_grad(grad)
        anomaly_states = tuple(_ANOMALY)
        for node in reversed(ordered):
            if node._backward_fn is not None and node.grad is not None:
                if anomaly_states:
                    # Attribute gradient writes made by this node's backward
                    # closure to this node's op (see repro.tensor.anomaly).
                    for state in anomaly_states:
                        state.enter_backward(node)
                    try:
                        node._backward_fn(node.grad)
                    finally:
                        for state in anomaly_states:
                            state.exit_backward()
                else:
                    node._backward_fn(node.grad)
                # Free the tape eagerly: interior activations are not needed
                # once their gradient has been propagated.
                if node is not self:
                    node._backward_fn = None
                    node._parents = ()

    def _topological_order(self) -> list["Tensor"]:
        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))
        return order

    # ------------------------------------------------------------------
    # Arithmetic primitives
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = ensure_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate_grad(grad)
            other._accumulate_grad(grad)

        return Tensor._from_op(out_data, (self, other), backward)

    def __radd__(self, other) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other) -> "Tensor":
        other = ensure_tensor(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate_grad(grad)
            other._accumulate_grad(-grad)

        return Tensor._from_op(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return ensure_tensor(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = ensure_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate_grad(grad * other.data)
            other._accumulate_grad(grad * self.data)

        return Tensor._from_op(out_data, (self, other), backward)

    def __rmul__(self, other) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other) -> "Tensor":
        other = ensure_tensor(other)
        out_data = self.data / other.data  # numerics: ok — primitive __truediv__ — anomaly mode attributes the op

        def backward(grad: np.ndarray) -> None:
            self._accumulate_grad(grad / other.data)  # numerics: ok — primitive div backward — mirrors forward denominator
            other._accumulate_grad(-grad * self.data / (other.data * other.data))  # numerics: ok — primitive div backward — mirrors forward denominator

        return Tensor._from_op(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return ensure_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate_grad(-grad)

        return Tensor._from_op(-self.data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate_grad(grad * exponent * self.data ** (exponent - 1))

        return Tensor._from_op(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = ensure_tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.data.ndim == 1 and other.data.ndim == 1:
                # Vector dot product: grad is a scalar.
                self._accumulate_grad(grad * other.data)
                other._accumulate_grad(grad * self.data)
                return
            if self.requires_grad:
                if other.data.ndim == 1:
                    # (..., n) @ (n,) -> (...,): outer-product style gradient.
                    self._accumulate_grad(np.expand_dims(grad, -1) * other.data)
                else:
                    self._accumulate_grad(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    # (n,) @ (n, k) -> (k,)
                    other._accumulate_grad(np.outer(self.data, grad))
                else:
                    grad_other = np.swapaxes(self.data, -1, -2) @ grad
                    other._accumulate_grad(grad_other)

        return Tensor._from_op(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Structural primitives
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        """View the tensor with a new shape (numpy reshape semantics)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate_grad(grad.reshape(original))

        return Tensor._from_op(out_data, (self,), backward)

    def transpose(self, axes: Sequence[int] | None = None) -> "Tensor":
        """Permute axes (full reversal when ``axes`` is omitted)."""
        if axes is None:
            axes = tuple(reversed(range(self.data.ndim)))
        axes = tuple(axes)
        inverse = tuple(np.argsort(axes))
        out_data = self.data.transpose(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate_grad(grad.transpose(inverse))

        return Tensor._from_op(out_data, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]
        basic = _is_basic_index(key)

        def backward(grad: np.ndarray) -> None:
            # Basic indexing never aliases, so += is safe and fast; either
            # way the write goes through the anomaly-checked scatter path.
            self._scatter_grad(key, grad, basic=basic)

        return Tensor._from_op(out_data, (self,), backward)

    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Sum over all elements or the given axis/axes."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis=axis)
            self._accumulate_grad(np.broadcast_to(expanded, self.data.shape))

        return Tensor._from_op(out_data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over all elements or the given axis/axes."""
        count = self.data.size if axis is None else _axis_size(self.data.shape, axis)
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)  # numerics: ok — empty-axis mean raises in sum()


def _is_basic_index(key) -> bool:
    """True when ``key`` uses only ints/slices/None/Ellipsis (no aliasing)."""
    parts = key if isinstance(key, tuple) else (key,)
    return all(
        isinstance(part, (int, np.integer, slice)) or part is None or part is Ellipsis
        for part in parts
    )


def _axis_size(shape: tuple[int, ...], axis: int | tuple[int, ...]) -> int:
    if isinstance(axis, int):
        return shape[axis]
    result = 1
    for ax in axis:
        result *= shape[ax]
    return result


def _raise_item(tensor: Tensor) -> float:
    raise ValueError(f"item() requires a single-element tensor, got shape {tensor.shape}")


def ensure_tensor(value) -> Tensor:
    """Coerce scalars / arrays / tensors into a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def parameters_of(tensors: Iterable[Tensor]) -> list[Tensor]:
    """Filter an iterable down to tensors that require gradients."""
    return [t for t in tensors if t.requires_grad]
