"""Tape-level numerical anomaly detection with op provenance.

The ACNN loss chains softmax, a sigmoid switch gate, and ``log`` of a
two-way mixture (paper Eq. 5-7) — exactly the shape that mints ``inf`` or
``NaN`` silently and surfaces it far downstream (a non-finite epoch loss,
``NonFiniteLogits`` at serve time). This module moves detection to the op
that caused it, mirroring ``torch.autograd.detect_anomaly``:

    from repro.tensor.anomaly import detect_anomaly, NumericalAnomaly

    with detect_anomaly():
        loss = model.loss(batch)   # every op output is checked
        loss.backward()            # every gradient write is checked

While the context is active, every tape op records provenance (op name,
input/output shapes and dtypes, and the user-code creation site) on its
output tensor. The first non-finite forward output or backward gradient
raises :class:`NumericalAnomaly` carrying the op's :class:`OpRecord` and
the causal chain of producing ops, and emits a structured ``anomaly.*``
telemetry event through the ambient hub so the trainer's
``RecoveryEvent.cause`` can name the culprit op instead of guessing.

The mode is strictly opt-in: with no active context the per-op cost is one
falsy check in ``Tensor._from_op`` (the same pattern as
:class:`~repro.tensor.profiler.TapeProfile`).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.tensor import core
from repro.tensor.core import Tensor

__all__ = [
    "OpRecord",
    "NumericalAnomaly",
    "detect_anomaly",
    "is_anomaly_enabled",
    "provenance_of",
]

# Frames whose filenames end with one of these are tape internals; the
# creation site reported for an op is the innermost frame *outside* them.
_INTERNAL_SUFFIXES = (
    "repro/tensor/core.py",
    "repro/tensor/ops.py",
    "repro/tensor/anomaly.py",
    "repro/nn/functional.py",
    "repro/nn/numerics.py",
)

_UNKNOWN_SITE = "<unknown>"


def _op_name_from_backward(backward_fn: Callable) -> str:
    """Derive the op name from the backward closure's qualname.

    Every differentiable op defines its backward as a local function, so
    ``tanh.<locals>.backward`` → ``tanh`` and
    ``Tensor.__add__.<locals>.backward`` → ``__add__`` — no per-op changes
    needed to know which op a tape node belongs to.
    """
    qualname = getattr(backward_fn, "__qualname__", "")
    if not qualname:
        return "<op>"
    return qualname.split(".<locals>")[0].split(".")[-1]


def _creation_site() -> str:
    """``file.py:line in function`` of the innermost non-internal frame."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename.replace("\\", "/")
        if not filename.endswith(_INTERNAL_SUFFIXES):
            short = "/".join(filename.split("/")[-2:])
            return f"{short}:{frame.f_lineno} in {frame.f_code.co_name}"
        frame = frame.f_back
    return _UNKNOWN_SITE


def _nonfinite_kind(array: np.ndarray) -> str | None:
    """``'nan'`` / ``'inf'`` if the array holds such values, else None."""
    if np.isnan(array).any():
        return "nan"
    if np.isinf(array).any():
        return "inf"
    return None


@dataclass(frozen=True)
class OpRecord:
    """Provenance of one tape op, recorded while anomaly mode is active."""

    op: str
    """Op name (``softmax``, ``__matmul__``, ``lstm_cell_step`` ...)."""
    seq: int
    """Creation order within the anomaly context (0-based)."""
    site: str
    """User-code creation site, ``file.py:line in function``."""
    input_shapes: tuple[tuple[int, ...], ...]
    input_dtypes: tuple[str, ...]
    output_shape: tuple[int, ...]
    output_dtype: str
    parents: tuple["OpRecord | None", ...] = field(default=(), repr=False)
    """Provenance of each input (None for leaf tensors)."""

    def describe(self) -> str:
        shapes = ", ".join(str(s) for s in self.input_shapes) or "-"
        return (
            f"{self.op} [{self.site}] "
            f"inputs ({shapes}) -> {self.output_shape} {self.output_dtype}"
        )

    def to_payload(self) -> dict:
        """JSON-safe summary for the ``anomaly`` telemetry event."""
        return {
            "op": self.op,
            "seq": self.seq,
            "site": self.site,
            "input_shapes": [list(s) for s in self.input_shapes],
            "output_shape": list(self.output_shape),
            "output_dtype": self.output_dtype,
        }


class NumericalAnomaly(ArithmeticError):
    """A tape op produced a non-finite forward output or backward gradient.

    Attributes
    ----------
    op:
        Name of the culprit op (the op that minted the first non-finite
        value — for ``phase='backward'``, the op whose backward pass wrote
        the gradient).
    phase:
        ``'forward'`` or ``'backward'``.
    kind:
        ``'nan'`` or ``'inf'``.
    record:
        Full :class:`OpRecord` of the culprit op.
    chain:
        Causal chain of :class:`OpRecord` from the earliest recorded
        producer down to the culprit (depth-limited).
    """

    def __init__(
        self,
        message: str,
        *,
        op: str,
        phase: str,
        kind: str,
        record: OpRecord,
        chain: list[OpRecord],
    ) -> None:
        super().__init__(message)
        self.op = op
        self.phase = phase
        self.kind = kind
        self.record = record
        self.chain = chain

    def chain_summary(self) -> str:
        lines = [f"  {'^' if i else '!'} {r.describe()}" for i, r in enumerate(self.chain)]
        return "\n".join(lines)

    def to_payload(self) -> dict:
        """JSON-safe payload emitted as the ``anomaly`` run event."""
        return {
            "op": self.op,
            "phase": self.phase,
            "kind": self.kind,
            "site": self.record.site,
            "chain": [r.to_payload() for r in self.chain],
        }


def _build_chain(record: OpRecord, max_depth: int = 12) -> list[OpRecord]:
    """Culprit-first causal chain: the op, then its producers upward."""
    chain: list[OpRecord] = []
    seen: set[int] = set()
    frontier: list[OpRecord] = [record]
    while frontier and len(chain) < max_depth:
        node = frontier.pop(0)
        if id(node) in seen:
            continue
        seen.add(id(node))
        chain.append(node)
        # Most-recent producers first: they are the likeliest causes.
        parents = [p for p in node.parents if p is not None]
        parents.sort(key=lambda r: -r.seq)
        frontier.extend(parents)
    return chain


class _AnomalyState:
    """Per-context bookkeeping installed on ``core._ANOMALY``."""

    def __init__(self, check_forward: bool, check_backward: bool, emit_telemetry: bool) -> None:
        self.check_forward = check_forward
        self.check_backward = check_backward
        self.emit_telemetry = emit_telemetry
        self._seq = 0
        # The op whose backward closure is currently executing; gradient
        # writes observed inside it are attributed to this op.
        self._backward_record: OpRecord | None = None

    # -- forward ------------------------------------------------------
    def on_op(self, out: Tensor, parents: tuple[Tensor, ...], backward_fn: Callable) -> None:
        record = OpRecord(
            op=_op_name_from_backward(backward_fn),
            seq=self._seq,
            site=_creation_site(),
            input_shapes=tuple(p.data.shape for p in parents),
            input_dtypes=tuple(str(p.data.dtype) for p in parents),
            output_shape=out.data.shape,
            output_dtype=str(out.data.dtype),
            parents=tuple(provenance_of(p) for p in parents),
        )
        self._seq += 1
        out._provenance = record
        if not self.check_forward:
            return
        kind = _nonfinite_kind(out.data)
        if kind is None:
            return
        poisoned = [
            i for i, p in enumerate(parents) if _nonfinite_kind(p.data) is not None
        ]
        note = (
            f" (input #{poisoned[0]} was already non-finite)" if poisoned else ""
        )
        self._raise(
            f"op {record.op!r} produced {kind} in its forward output "
            f"at {record.site}{note}",
            phase="forward",
            kind=kind,
            record=record,
        )

    # -- backward -----------------------------------------------------
    def enter_backward(self, node: Tensor) -> None:
        self._backward_record = provenance_of(node)

    def exit_backward(self) -> None:
        self._backward_record = None

    def on_grad(self, target: Tensor, grad: np.ndarray) -> None:
        if not self.check_backward:
            return
        kind = _nonfinite_kind(grad)
        if kind is None:
            return
        record = self._backward_record or provenance_of(target)
        if record is None:
            # Gradient seeded directly into a leaf (backward(grad=...)).
            record = OpRecord(
                op="<seed>",
                seq=-1,
                site=_creation_site(),
                input_shapes=(),
                input_dtypes=(),
                output_shape=target.data.shape,
                output_dtype=str(target.data.dtype),
            )
        self._raise(
            f"op {record.op!r} produced {kind} in its backward gradient "
            f"(forward site {record.site})",
            phase="backward",
            kind=kind,
            record=record,
        )

    # -- shared -------------------------------------------------------
    def _raise(self, message: str, *, phase: str, kind: str, record: OpRecord) -> None:
        chain = _build_chain(record)
        anomaly = NumericalAnomaly(
            message + "\ncausal chain (culprit first):\n"
            + "\n".join(f"  {r.describe()}" for r in chain),
            op=record.op,
            phase=phase,
            kind=kind,
            record=record,
            chain=chain,
        )
        if self.emit_telemetry:
            # Lazy import: repro.tensor must not hard-depend on the
            # observability layer (which itself imports the profiler).
            from repro.observability import get_telemetry

            telemetry = get_telemetry()
            telemetry.counter(f"anomaly.{phase}")
            telemetry.run_marker("anomaly", **anomaly.to_payload())
        raise anomaly


def provenance_of(tensor: Tensor) -> OpRecord | None:
    """The :class:`OpRecord` attached to ``tensor`` (None for leaves /
    tensors created outside an anomaly context)."""
    return getattr(tensor, "_provenance", None)


class detect_anomaly:
    """Context manager enabling tape-level anomaly detection.

    Parameters
    ----------
    check_forward, check_backward:
        Independently toggle output and gradient checks (both on by
        default).
    emit_telemetry:
        Emit ``anomaly.*`` events through the ambient telemetry hub when
        an anomaly is raised (on by default; a ``NullTelemetry`` hub makes
        this free).
    """

    def __init__(
        self,
        check_forward: bool = True,
        check_backward: bool = True,
        emit_telemetry: bool = True,
    ) -> None:
        self._state = _AnomalyState(check_forward, check_backward, emit_telemetry)

    def __enter__(self) -> "detect_anomaly":
        core._ANOMALY.append(self._state)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        core._ANOMALY.remove(self._state)


def is_anomaly_enabled() -> bool:
    """Whether a :class:`detect_anomaly` context is currently active."""
    return bool(core._ANOMALY)
