"""Save/load utilities for named parameter collections.

Checkpoints are plain ``.npz`` archives keyed by parameter name, so they are
inspectable with nothing but numpy.
"""

from __future__ import annotations

import os
from typing import Mapping

import numpy as np

__all__ = ["save_arrays", "load_arrays"]


def save_arrays(path: str | os.PathLike, arrays: Mapping[str, np.ndarray]) -> None:
    """Write a name → array mapping to ``path`` as a compressed ``.npz``."""
    directory = os.path.dirname(os.fspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    np.savez_compressed(os.fspath(path), **{k: np.asarray(v) for k, v in arrays.items()})


def load_arrays(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Read a mapping previously written by :func:`save_arrays`."""
    with np.load(os.fspath(path)) as archive:
        return {key: archive[key] for key in archive.files}
