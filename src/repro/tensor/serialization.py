"""Save/load utilities for named parameter collections.

Checkpoints are plain ``.npz`` archives keyed by parameter name, so they are
inspectable with nothing but numpy.

Persistence here is *crash-safe*: every write goes to a temporary file in
the destination directory, is fsync'd, and is then published with an atomic
:func:`os.replace`, so a reader can never observe a half-written archive at
the final path. Each archive additionally embeds a content checksum under a
reserved key; :func:`load_arrays` verifies it and raises
:class:`CheckpointCorrupted` instead of silently returning garbage.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import zipfile
from typing import Callable, Mapping

import numpy as np

__all__ = [
    "CheckpointCorrupted",
    "atomic_write",
    "file_digest",
    "save_arrays",
    "load_arrays",
]

CHECKSUM_KEY = "__checksum_sha256__"
"""Reserved archive key holding the content digest (never a parameter name)."""


class CheckpointCorrupted(RuntimeError):
    """A persisted artifact failed validation (truncated, altered, or torn).

    Raised instead of numpy/zipfile's internal errors so callers can
    distinguish "this checkpoint is damaged — fall back to an older one"
    from programming errors like loading into the wrong architecture.
    """


def _fsync_directory(directory: str) -> None:
    """Flush a directory entry so a rename survives power loss (best effort)."""
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. non-POSIX filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def _publish(tmp_path: str, final_path: str) -> None:
    """Atomically move a fully-written temp file to its final name.

    Split out as a seam so the fault-injection harness can simulate a crash
    *between* finishing the write and publishing it.
    """
    os.replace(tmp_path, final_path)


def atomic_write(path: str | os.PathLike, write: Callable[[object], None], binary: bool = True) -> None:
    """Run ``write(handle)`` against a temp file, fsync, then atomically rename.

    After this returns, ``path`` holds the complete new content; if the
    process dies at any earlier point, ``path`` still holds the previous
    generation (or does not exist) — never a partial write.
    """
    final_path = os.fspath(path)
    directory = os.path.dirname(final_path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(final_path) + ".tmp.", dir=directory or "."
    )
    try:
        with os.fdopen(fd, "wb" if binary else "w", encoding=None if binary else "utf-8") as handle:
            write(handle)
            handle.flush()
            os.fsync(handle.fileno())
        _publish(tmp_path, final_path)
        _fsync_directory(directory)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def file_digest(path: str | os.PathLike) -> str:
    """Hex SHA-256 of a file's bytes (streamed, so large archives are fine)."""
    digest = hashlib.sha256()
    with open(os.fspath(path), "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _content_checksum(arrays: Mapping[str, np.ndarray]) -> str:
    """Order-independent digest over names, dtypes, shapes, and raw bytes."""
    digest = hashlib.sha256()
    for name in sorted(arrays):
        value = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(value.dtype).encode("utf-8"))
        digest.update(str(value.shape).encode("utf-8"))
        digest.update(value.tobytes())
    return digest.hexdigest()


def save_arrays(path: str | os.PathLike, arrays: Mapping[str, np.ndarray]) -> None:
    """Write a name → array mapping to ``path`` as a compressed ``.npz``.

    The write is atomic (temp file + fsync + rename) and the archive embeds
    a SHA-256 content checksum under :data:`CHECKSUM_KEY` which
    :func:`load_arrays` verifies.
    """
    payload = {k: np.asarray(v) for k, v in arrays.items()}
    if CHECKSUM_KEY in payload:
        raise ValueError(f"{CHECKSUM_KEY!r} is a reserved archive key")
    checksum = _content_checksum(payload)
    payload[CHECKSUM_KEY] = np.frombuffer(bytes.fromhex(checksum), dtype=np.uint8)
    atomic_write(path, lambda handle: np.savez_compressed(handle, **payload))


def load_arrays(path: str | os.PathLike, verify: bool = True) -> dict[str, np.ndarray]:
    """Read a mapping previously written by :func:`save_arrays`.

    Raises
    ------
    CheckpointCorrupted
        If the archive is unreadable (truncated/torn) or its embedded
        checksum does not match the content. Archives written before
        checksums existed load without verification.
    """
    location = os.fspath(path)
    try:
        with np.load(location) as archive:
            arrays = {key: archive[key] for key in archive.files}
    except (zipfile.BadZipFile, OSError, ValueError, EOFError, KeyError) as exc:
        if isinstance(exc, FileNotFoundError):
            raise
        raise CheckpointCorrupted(f"unreadable array archive {location}: {exc}") from exc
    stored = arrays.pop(CHECKSUM_KEY, None)
    if verify and stored is not None:
        expected = bytes(np.asarray(stored, dtype=np.uint8)).hex()
        actual = _content_checksum(arrays)
        if actual != expected:
            raise CheckpointCorrupted(
                f"checksum mismatch in {location}: stored {expected[:12]}…, "
                f"computed {actual[:12]}…"
            )
    return arrays
