"""Lazy kernel-fusion execution with arena buffers.

The numpy tape executes one Python-level op at a time: every LSTM decode
step pays ~30 tape-node creations and as many fresh array allocations, and
that per-op dispatch — not the FLOPs — dominates both training epochs and
the batched beam engine. This module adds a *staged* execution mode:

- :class:`lazy` — a context manager (usable as a decorator) that switches
  the blessed fusable blocks (the LSTM gate block in
  :mod:`repro.nn.functional`, the attention score→mask→softmax chain and
  the pointer/copy score chain) from their elementary-op formulation to
  fused kernels. Under gradients each fused block becomes ONE tape node
  with a hand-written backward; with gradients disabled the kernels
  additionally *replay* through preallocated arena buffers — no per-op
  tape dispatch, no per-op allocation.
- :class:`Arena` — the buffer pool. Buffers are keyed by
  ``(kernel key, shape, dtype)`` — the *shape signature* — so the first
  execution of a block with a given signature traces (allocates) its
  buffer plan and every subsequent call with that signature replays into
  the same memory. Output buffers ping-pong between ``rotate`` physical
  arrays so a kernel whose step-``t`` output feeds its own step-``t+1``
  input never reads memory it is about to overwrite.
- :func:`compile_graph` — wraps a step function (e.g. a model's
  ``step_log_probs``); each call is keyed by the shape signature of its
  arguments, the first call per signature records the op graph (arena
  misses), and later calls replay through the cached buffers (arena hits).

Equivalence contract
--------------------
Fused kernels perform the *same numpy operations in the same order* as the
eager formulation, so forward outputs are byte-identical; hand-written
backwards are gradcheck-pinned (tolerance equivalence). NaN is never
laundered: the transcendentals route through :mod:`repro.nn.numerics`
(``scripts/lint_numerics.py`` enforces this with waiver-proof strictness
for the fused-kernel modules) and non-finite inputs stay detectable.

When eager is still required
----------------------------
- :func:`repro.tensor.anomaly.detect_anomaly` needs per-op provenance, so
  the raw arena fast path steps aside while a context is active: kernels
  fall back to their single-tape-node form, which the anomaly hooks see.
- Coverage-mode attention (the See et al. extension) mixes an accumulated
  history into the scores and keeps the elementary-op path.
- Gradient mode never reuses arena memory (backwards need their forward
  activations alive); fusion there is node fusion only.

Reentrancy audit (``_GRAD_ENABLED`` / ``_PROFILES`` / ``_ANOMALY`` / ``_LAZY``)
-------------------------------------------------------------------------------
All four mode switches are plain module-level stacks, which is safe
because every consumer — the trainer, the decoding engines, and serving's
``MicroBatcher`` (a synchronous bounded FIFO; it never spawns threads) —
runs tape code on one thread per process. The stacks are exception-safe
(``append`` on enter, ``remove`` of the exact entry on exit) and reentrant
(nested contexts, including reusing one ``no_grad``/``lazy`` instance,
restore correctly because state is kept per *entry*, not per instance).
Replaying a graph inside the batcher therefore composes with ``no_grad``
and ``lazy`` the same way any nested context does. A multi-process worker
pool (the roadmap's scale-out path) gets a fresh set of stacks per
process, which is exactly the isolation it needs; sharing one process
between concurrent tape users would require promoting these to
thread-locals and is deliberately out of contract.
"""

from __future__ import annotations

import functools
from contextlib import nullcontext
from typing import Any, Callable

import numpy as np

from repro.tensor import core

__all__ = [
    "Arena",
    "lazy",
    "compile_graph",
    "is_lazy_enabled",
    "active_arena",
    "arena_fast_path",
    "fusion_enabled",
    "set_fusion_enabled",
    "fusion_context",
    "resolve_fusion",
    "signature_of",
]

# Active lazy contexts, innermost last. Same single-threaded contract as
# core._GRAD_ENABLED (see the reentrancy audit in the module docstring).
_LAZY: list["lazy"] = []

# Process-wide opt-in default consulted by fusion_context()/resolve_fusion()
# when a call site passes ``fusion=None``. Off by default: with the flag
# down and no explicit lazy() context, behavior is bit-for-bit the eager
# tape.
_FUSION_DEFAULT = False


#: Hoisted out of ``Arena.buffer`` — the per-call ``np.dtype(...).str``
#: round-trip is measurable on small replayed kernels.
_DEFAULT_DTYPE_STR = np.dtype(core.DEFAULT_DTYPE).str


class Arena:
    """Preallocated buffer pool keyed by shape signature.

    ``buffer(key, shape, dtype)`` returns a reusable array for the slot
    ``(key, shape, dtype)``. The first request allocates (a *miss*, i.e.
    the trace phase of that signature); subsequent requests return the
    same memory (a *hit*, the replay phase). Slots created with
    ``rotate > 1`` cycle through that many physical buffers, one per
    call, so recurrent chains can read their previous output while the
    next one is being written.
    """

    __slots__ = ("_slots", "hits", "misses", "nbytes")

    def __init__(self) -> None:
        self._slots: dict[tuple, list] = {}
        self.hits = 0
        self.misses = 0
        self.nbytes = 0

    def buffer(
        self,
        key: tuple,
        shape: tuple[int, ...],
        dtype=core.DEFAULT_DTYPE,
        rotate: int = 1,
    ) -> np.ndarray:
        """A preallocated ``shape``/``dtype`` array for slot ``key``.

        The returned buffer's contents are unspecified — kernels must
        overwrite every element (use ``out=`` forms, never ``+=`` on a
        fresh buffer).
        """
        if dtype is core.DEFAULT_DTYPE:
            dtype_str = _DEFAULT_DTYPE_STR
        else:
            dtype_str = np.dtype(dtype).str
        slot_key = (key, shape, dtype_str)
        slot = self._slots.get(slot_key)
        if slot is None:
            # [cursor, buf_0 .. buf_{rotate-1}] — buffers fill in lazily so
            # a rotate=2 slot used once allocates once.
            slot = [0] + [None] * max(1, int(rotate))
            self._slots[slot_key] = slot
        cursor = slot[0]
        slot[0] = (cursor + 1) % (len(slot) - 1)
        buf = slot[1 + cursor]
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            slot[1 + cursor] = buf
            self.misses += 1
            self.nbytes += buf.nbytes
            hit = False
        else:
            self.hits += 1
            hit = True
        if core._PROFILES:
            for profile in core._PROFILES:
                profile.record_arena(hit, buf.nbytes)
        return buf

    def reset(self) -> None:
        """Drop every buffer (a new trace phase starts on next use)."""
        self._slots.clear()
        self.nbytes = 0

    def stats(self) -> dict:
        """Counters for tests and telemetry."""
        return {
            "slots": len(self._slots),
            "hits": self.hits,
            "misses": self.misses,
            "nbytes": self.nbytes,
        }


class lazy:
    """Enable staged (fused / arena-replayed) execution inside the block.

    Usable as a context manager or as a decorator::

        with lazy():
            hypotheses = batched_beam_decode(model, batch)

        @lazy()
        def decode(batch): ...

    Each entry pushes onto the module stack and pops exactly that entry on
    exit, so nesting — including reusing one instance — and exceptions
    restore the previous state correctly. An explicit ``arena`` can be
    shared across blocks to keep buffers alive between calls.
    """

    def __init__(self, arena: Arena | None = None) -> None:
        self.arena = arena if arena is not None else Arena()

    def __enter__(self) -> "lazy":
        _LAZY.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _LAZY.remove(self)

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with self:
                return fn(*args, **kwargs)

        return wrapper


def is_lazy_enabled() -> bool:
    """Whether a :class:`lazy` context is currently active."""
    return bool(_LAZY)


def active_arena() -> Arena | None:
    """The innermost active context's arena (None outside lazy mode)."""
    return _LAZY[-1].arena if _LAZY else None


def arena_fast_path() -> Arena | None:
    """The arena to replay through, or None if raw replay is not allowed.

    Raw (non-tape) arena execution requires lazy mode on, gradients off,
    and no :func:`~repro.tensor.anomaly.detect_anomaly` context — anomaly
    mode must see every block as a tape node to attribute non-finite
    values, so kernels fall back to their single-node form there.
    """
    if not _LAZY:
        return None
    if core.is_grad_enabled() or core._ANOMALY:
        return None
    return _LAZY[-1].arena


def fusion_enabled() -> bool:
    """The process-wide fusion opt-in default (off unless raised)."""
    return _FUSION_DEFAULT


def set_fusion_enabled(enabled: bool) -> bool:
    """Set the process-wide default; returns the previous value."""
    global _FUSION_DEFAULT
    previous = _FUSION_DEFAULT
    _FUSION_DEFAULT = bool(enabled)
    return previous


def resolve_fusion(opt: bool | None) -> bool:
    """Resolve a per-call ``fusion=`` argument against the global default."""
    return _FUSION_DEFAULT if opt is None else bool(opt)


def fusion_context(opt: bool | None = None):
    """The opt-in context used by model/decoder step loops.

    Returns a fresh :class:`lazy` context when fusion is requested
    (explicitly or via the global default) and none is active yet; a
    no-op otherwise, so nested loops share the outer context's arena.
    """
    if is_lazy_enabled() or not resolve_fusion(opt):
        return nullcontext()
    return lazy()


# ----------------------------------------------------------------------
# Shape-signature keyed graph compilation
# ----------------------------------------------------------------------
def signature_of(*args: Any, **kwargs: Any) -> tuple:
    """Structural shape signature of a call's arguments.

    Arrays and tensors contribute ``(shape, dtype)``; scalars contribute
    their value (a new max-length or beam width is a different graph);
    containers recurse; rich objects (decoder states, encoder contexts)
    contribute their type name — their array shapes are stable for the
    lifetime of one compiled step loop.
    """
    return tuple(_describe(a) for a in args) + tuple(
        (k, _describe(v)) for k, v in sorted(kwargs.items())
    )


def _describe(value: Any, depth: int = 0) -> Any:
    if depth > 3:
        return type(value).__name__
    if isinstance(value, core.Tensor):
        return ("T", value.data.shape, value.data.dtype.str)
    if isinstance(value, np.ndarray):
        return ("A", value.shape, value.dtype.str)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_describe(v, depth + 1) for v in value)
    return type(value).__name__


def compile_graph(fn: Callable) -> Callable:
    """Stage ``fn`` for signature-keyed record/replay execution.

    The wrapper runs every call inside one persistent :class:`lazy`
    context (one arena for the function's lifetime). The first call with
    a given shape signature records the op graph — fused kernels allocate
    their arena plans (misses) — and subsequent calls with the same
    signature replay through the preallocated buffers (hits). The wrapper
    exposes ``arena`` and ``signatures`` (signature → call count) for
    introspection and tests.
    """
    context = lazy()
    signatures: dict[tuple, int] = {}

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        sig = signature_of(*args, **kwargs)
        signatures[sig] = signatures.get(sig, 0) + 1
        with context:
            return fn(*args, **kwargs)

    wrapper.arena = context.arena
    wrapper.signatures = signatures
    return wrapper
