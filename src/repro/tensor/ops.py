"""Differentiable operations built on the autograd core.

Every function takes and returns :class:`~repro.tensor.core.Tensor` objects
and registers the appropriate backward closure on the tape. The activations
and normalizations here are exactly the ones the ACNN paper's equations use:
``tanh`` (attention scores), ``sigmoid`` (the copy/generate switch gate),
``softmax`` (attention weights and output distributions).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tensor.core import Tensor, ensure_tensor

__all__ = [
    "tanh",
    "sigmoid",
    "relu",
    "exp",
    "log",
    "sqrt",
    "clip",
    "abs_",
    "maximum",
    "minimum",
    "softmax",
    "log_softmax",
    "concat",
    "stack",
    "squeeze",
    "expand_dims",
    "max_",
    "dropout",
    "embedding_lookup",
    "masked_fill",
    "where",
    "gather_rows",
]


def tanh(x: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent."""
    out_data = np.tanh(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate_grad(grad * (1.0 - out_data * out_data))

    return Tensor._from_op(out_data, (x,), backward)


def sigmoid(x: Tensor) -> Tensor:
    """Elementwise logistic sigmoid, computed stably for large |x|."""
    data = x.data
    out_data = np.empty_like(data)
    positive = data >= 0
    out_data[positive] = 1.0 / (1.0 + np.exp(-data[positive]))  # numerics: ok — stable sigmoid: exp of negative values only
    exp_x = np.exp(data[~positive])  # numerics: ok — stable sigmoid: exp of negative values only
    out_data[~positive] = exp_x / (1.0 + exp_x)

    def backward(grad: np.ndarray) -> None:
        x._accumulate_grad(grad * out_data * (1.0 - out_data))

    return Tensor._from_op(out_data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    """Elementwise rectified linear unit."""
    out_data = np.maximum(x.data, 0.0)

    def backward(grad: np.ndarray) -> None:
        x._accumulate_grad(grad * (x.data > 0))

    return Tensor._from_op(out_data, (x,), backward)


def exp(x: Tensor) -> Tensor:
    """Elementwise exponential."""
    out_data = np.exp(x.data)  # numerics: ok — primitive exp op — safe_exp is the guarded form

    def backward(grad: np.ndarray) -> None:
        x._accumulate_grad(grad * out_data)

    return Tensor._from_op(out_data, (x,), backward)


def log(x: Tensor) -> Tensor:
    """Elementwise natural logarithm."""
    out_data = np.log(x.data)  # numerics: ok — primitive log op — safe_log is the guarded form

    def backward(grad: np.ndarray) -> None:
        x._accumulate_grad(grad / x.data)  # numerics: ok — log backward: domain matches forward input

    return Tensor._from_op(out_data, (x,), backward)


def sqrt(x: Tensor) -> Tensor:
    """Elementwise square root."""
    out_data = np.sqrt(x.data)  # numerics: ok — primitive sqrt op — safe_sqrt is the guarded form

    def backward(grad: np.ndarray) -> None:
        x._accumulate_grad(grad * 0.5 / out_data)  # numerics: ok — sqrt backward: domain matches forward input

    return Tensor._from_op(out_data, (x,), backward)


def clip(x: Tensor, low: float, high: float) -> Tensor:
    """Clamp values into ``[low, high]``; gradient is zero outside the range."""
    out_data = np.clip(x.data, low, high)

    def backward(grad: np.ndarray) -> None:
        inside = (x.data >= low) & (x.data <= high)
        x._accumulate_grad(grad * inside)

    return Tensor._from_op(out_data, (x,), backward)


def abs_(x: Tensor) -> Tensor:
    """Elementwise absolute value (subgradient 0 at the origin)."""
    out_data = np.abs(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate_grad(grad * np.sign(x.data))

    return Tensor._from_op(out_data, (x,), backward)


def maximum(x: Tensor, y: Tensor) -> Tensor:
    """Elementwise maximum; ties send the gradient to the first argument."""
    x, y = ensure_tensor(x), ensure_tensor(y)
    out_data = np.maximum(x.data, y.data)

    def backward(grad: np.ndarray) -> None:
        take_x = x.data >= y.data
        x._accumulate_grad(grad * take_x)
        y._accumulate_grad(grad * ~take_x)

    return Tensor._from_op(out_data, (x, y), backward)


def minimum(x: Tensor, y: Tensor) -> Tensor:
    """Elementwise minimum; ties send the gradient to the first argument."""
    x, y = ensure_tensor(x), ensure_tensor(y)
    out_data = np.minimum(x.data, y.data)

    def backward(grad: np.ndarray) -> None:
        take_x = x.data <= y.data
        x._accumulate_grad(grad * take_x)
        y._accumulate_grad(grad * ~take_x)

    return Tensor._from_op(out_data, (x, y), backward)


def _shift_max(data: np.ndarray, axis: int) -> np.ndarray:
    """Max along ``axis`` with ``-inf`` rows replaced by 0.

    The max-shift trick breaks on a row that is entirely ``-inf`` (a fully
    masked attention row): ``x - (-inf)`` is NaN. Substituting a finite
    shift keeps the row computable (``exp(-inf) = 0``); the denominators
    are guarded separately. NaN and ``+inf`` maxima are left alone on
    purpose — those indicate invalid inputs and must stay detectable (see
    :mod:`repro.tensor.anomaly`), not be silently laundered into numbers.
    """
    max_ = data.max(axis=axis, keepdims=True)
    neginf = np.isneginf(max_)
    if neginf.any():
        max_ = np.where(neginf, 0.0, max_)
    return max_


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``.

    Stabilized kernel: the classic max-shift handles arbitrarily large
    finite logits, and rows that are entirely ``-inf`` (fully masked)
    return all-zero rows instead of NaN. Well-conditioned inputs take the
    identical code path bit-for-bit.
    """
    if x.data.shape[axis] == 0:
        return _empty_like_op(x)
    shifted = x.data - _shift_max(x.data, axis)
    exp_x = np.exp(shifted)  # numerics: ok — max-shifted input <= 0 (or -inf rows)
    denom = exp_x.sum(axis=axis, keepdims=True)
    zero = denom == 0.0
    if zero.any():
        # Fully-masked rows: no mass anywhere; return zeros, not NaN.
        denom = np.where(zero, 1.0, denom)
    out_data = exp_x / denom  # numerics: ok — denominator guarded > 0

    def backward(grad: np.ndarray) -> None:
        inner = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate_grad(out_data * (grad - inner))

    return Tensor._from_op(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``.

    Stabilized kernel: log-sum-exp with max-shift; fully ``-inf`` (masked)
    rows yield ``-inf`` log-probabilities (the honest value) rather than
    NaN. Well-conditioned inputs are byte-identical to the naive form.
    """
    if x.data.shape[axis] == 0:
        return _empty_like_op(x)
    shifted = x.data - _shift_max(x.data, axis)
    norm = np.exp(shifted).sum(axis=axis, keepdims=True)  # numerics: ok — max-shifted
    zero = norm == 0.0
    if zero.any():
        norm = np.where(zero, 1.0, norm)
    log_norm = np.log(norm)  # numerics: ok — norm guarded >= smallest exp term
    out_data = shifted - log_norm
    soft = np.exp(out_data)  # numerics: ok — log-probabilities are <= 0

    def backward(grad: np.ndarray) -> None:
        x._accumulate_grad(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._from_op(out_data, (x,), backward)


def _empty_like_op(x: Tensor) -> Tensor:
    """Degenerate empty-axis reduction: identity op over zero elements."""

    def backward(grad: np.ndarray) -> None:
        x._accumulate_grad(grad)

    return Tensor._from_op(x.data.copy(), (x,), backward)


def _identity(x: Tensor) -> Tensor:
    """A distinct identity node sharing ``x``'s data (gradient passes through)."""

    def backward(grad: np.ndarray) -> None:
        x._accumulate_grad(grad)

    return Tensor._from_op(x.data, (x,), backward)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis."""
    tensors = [ensure_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    boundaries = np.cumsum(sizes)[:-1]

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, boundaries, axis=axis)
        for tensor, piece in zip(tensors, pieces):
            tensor._accumulate_grad(piece)

    return Tensor._from_op(out_data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [ensure_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            tensor._accumulate_grad(np.squeeze(piece, axis=axis))

    return Tensor._from_op(out_data, tuple(tensors), backward)


def squeeze(x: Tensor, axis: int) -> Tensor:
    """Remove a size-1 axis."""
    out_data = np.squeeze(x.data, axis=axis)

    def backward(grad: np.ndarray) -> None:
        x._accumulate_grad(np.expand_dims(grad, axis=axis))

    return Tensor._from_op(out_data, (x,), backward)


def expand_dims(x: Tensor, axis: int) -> Tensor:
    """Insert a new size-1 axis."""
    out_data = np.expand_dims(x.data, axis=axis)

    def backward(grad: np.ndarray) -> None:
        x._accumulate_grad(np.squeeze(grad, axis=axis))

    return Tensor._from_op(out_data, (x,), backward)


def max_(x: Tensor, axis: int, keepdims: bool = False) -> Tensor:
    """Maximum along an axis; gradient flows to the (first) argmax entries."""
    out_data = x.data.max(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        expanded = grad if keepdims else np.expand_dims(grad, axis=axis)
        max_expanded = out_data if keepdims else np.expand_dims(out_data, axis=axis)
        mask = x.data == max_expanded
        # Split gradient evenly among ties so the sum of gradients is exact.
        counts = mask.sum(axis=axis, keepdims=True)
        x._accumulate_grad(expanded * mask / counts)  # numerics: ok — mean backward: counts >= 1 on non-empty axes

    return Tensor._from_op(out_data, (x,), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero activations with probability ``p`` during training.

    The surviving activations are scaled by ``1 / (1 - p)`` so the expected
    value is unchanged, matching Srivastava et al. (2014) as used in the paper
    (``p = 0.3``).

    The no-op cases (``p == 0.0`` or eval mode) return a proper *identity
    node* — a distinct tensor sharing the input's data — never the input
    object itself. Aliasing the input broke two graph invariants: arena
    buffer planning in :mod:`repro.tensor.lazy` assumes distinct graph
    nodes are distinct objects, and :class:`~repro.tensor.profiler.TapeProfile`
    node counts differed between train (``p > 0``: one node) and eval /
    ``p == 0`` graphs (zero nodes) for the same model.
    """
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return _identity(x)
    keep = (rng.random(x.data.shape) >= p) / (1.0 - p)  # numerics: ok — dropout validates p < 1
    out_data = x.data * keep

    def backward(grad: np.ndarray) -> None:
        x._accumulate_grad(grad * keep)

    return Tensor._from_op(out_data, (x,), backward)


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of an embedding matrix.

    Parameters
    ----------
    weight:
        ``(vocab_size, dim)`` embedding table.
    indices:
        Integer array of arbitrary shape; the result has shape
        ``indices.shape + (dim,)``.
    """
    indices = np.asarray(indices)
    if indices.dtype.kind not in "iu":
        raise TypeError(f"embedding indices must be integers, got {indices.dtype}")
    out_data = weight.data[indices]

    def backward(grad: np.ndarray) -> None:
        # Through the anomaly-checked scatter path: a non-finite embedding
        # gradient (or one minted by the accumulation itself) must trip
        # detect_anomaly() like any dense gradient write.
        weight._scatter_grad(
            indices.reshape(-1), grad.reshape(-1, weight.data.shape[1])
        )

    return Tensor._from_op(out_data, (weight,), backward)


def masked_fill(x: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Replace entries where ``mask`` is True with ``value`` (no grad there).

    Used to exclude padding positions from attention softmaxes.
    """
    mask = np.asarray(mask, dtype=bool)
    out_data = np.where(mask, value, x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate_grad(grad * ~mask)

    return Tensor._from_op(out_data, (x,), backward)


def where(condition: np.ndarray, x: Tensor, y: Tensor) -> Tensor:
    """Differentiable selection between two tensors by a boolean array."""
    condition = np.asarray(condition, dtype=bool)
    x, y = ensure_tensor(x), ensure_tensor(y)
    out_data = np.where(condition, x.data, y.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate_grad(grad * condition)
        y._accumulate_grad(grad * ~condition)

    return Tensor._from_op(out_data, (x, y), backward)


def gather_rows(x: Tensor, indices: np.ndarray) -> Tensor:
    """Pick one entry per row: ``out[i] = x[i, indices[i]]``.

    The workhorse of negative-log-likelihood losses, where ``indices`` holds
    the target class for each example in the batch.
    """
    indices = np.asarray(indices)
    rows = np.arange(x.data.shape[0])
    out_data = x.data[rows, indices]

    def backward(grad: np.ndarray) -> None:
        x._scatter_grad((rows, indices), grad)

    return Tensor._from_op(out_data, (x,), backward)
