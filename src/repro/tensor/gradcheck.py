"""Numerical gradient checking.

Compares tape gradients against central finite differences. Used throughout
the test suite to machine-verify every differentiable op and layer, which is
what makes a from-scratch autodiff backend trustworthy enough to carry a
paper reproduction.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.core import Tensor

__all__ = [
    "numerical_gradient",
    "check_gradients",
    "check_finite_gradients",
    "GradientCheckError",
]


class GradientCheckError(AssertionError):
    """Raised when analytic and numerical gradients disagree."""


def numerical_gradient(
    fn: Callable[[], Tensor],
    parameter: Tensor,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Estimate ``d fn() / d parameter`` with central differences.

    ``fn`` must return a scalar tensor and must re-run the full forward pass
    on each call (it is invoked ``2 * parameter.size`` times).
    """
    grad = np.zeros_like(parameter.data)
    flat_param = parameter.data.reshape(-1)
    flat_grad = grad.reshape(-1)
    for i in range(flat_param.size):
        original = flat_param[i]
        flat_param[i] = original + epsilon
        plus = fn().item()
        flat_param[i] = original - epsilon
        minus = fn().item()
        flat_param[i] = original
        flat_grad[i] = (plus - minus) / (2.0 * epsilon)  # numerics: ok — epsilon validated > 0
    return grad


def check_gradients(
    fn: Callable[[], Tensor],
    parameters: Sequence[Tensor],
    epsilon: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> None:
    """Assert tape gradients of ``fn`` match finite differences.

    Raises
    ------
    GradientCheckError
        If any parameter's analytic gradient deviates beyond tolerance.
    """
    for p in parameters:
        p.zero_grad()
    loss = fn()
    loss.backward()
    analytic = [None if p.grad is None else p.grad.copy() for p in parameters]

    for index, parameter in enumerate(parameters):
        numeric = numerical_gradient(fn, parameter, epsilon=epsilon)
        got = analytic[index]
        if got is None:
            got = np.zeros_like(numeric)
        if not np.allclose(got, numeric, rtol=rtol, atol=atol):
            worst = np.abs(got - numeric).max()
            raise GradientCheckError(
                f"gradient mismatch for parameter {index} "
                f"({parameter.name or 'unnamed'}): max abs error {worst:.3e}\n"
                f"analytic:\n{got}\nnumeric:\n{numeric}"
            )


def check_finite_gradients(
    fn: Callable[[], Tensor],
    parameters: Sequence[Tensor],
) -> float:
    """Assert ``fn``'s output and every tape gradient are finite.

    The adversarial companion to :func:`check_gradients`: on degenerate
    inputs (saturated logits, fully-masked rows, zero probabilities) a
    finite-difference comparison is meaningless — clamped kernels have
    legitimate zero-gradient regions — but the *stability contract* still
    holds: no NaN/inf may reach the loss or any gradient. Returns the loss
    value so callers can make further assertions.

    Raises
    ------
    GradientCheckError
        If the output or any parameter gradient is non-finite.
    """
    for parameter in parameters:
        parameter.zero_grad()
    loss = fn()
    value = loss.item()
    if not np.isfinite(value):
        raise GradientCheckError(f"non-finite output {value}")
    loss.backward()
    for index, parameter in enumerate(parameters):
        if parameter.grad is not None and not np.isfinite(parameter.grad).all():
            bad = parameter.grad[~np.isfinite(parameter.grad)]
            raise GradientCheckError(
                f"non-finite gradient for parameter {index} "
                f"({parameter.name or 'unnamed'}): first offender {bad.flat[0]}"
            )
    return value
