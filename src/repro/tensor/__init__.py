"""From-scratch reverse-mode autodiff engine (the repository's "framework").

The ACNN paper was built on Torch 7 / OpenNMT; this package is the
substitution for that substrate: a numpy tensor type with a dynamic tape,
the differentiable ops the paper's equations need, numerical gradient
checking, and checkpoint serialization.
"""

from repro.tensor.anomaly import (
    NumericalAnomaly,
    OpRecord,
    detect_anomaly,
    is_anomaly_enabled,
    provenance_of,
)
from repro.tensor.core import DEFAULT_DTYPE, Tensor, ensure_tensor, is_grad_enabled, no_grad
from repro.tensor.lazy import (
    Arena,
    compile_graph,
    fusion_context,
    is_lazy_enabled,
    lazy,
    resolve_fusion,
    set_fusion_enabled,
)
from repro.tensor.gradcheck import (
    GradientCheckError,
    check_finite_gradients,
    check_gradients,
    numerical_gradient,
)
from repro.tensor.ops import (
    abs_,
    clip,
    concat,
    dropout,
    embedding_lookup,
    exp,
    expand_dims,
    gather_rows,
    log,
    log_softmax,
    masked_fill,
    max_,
    maximum,
    minimum,
    relu,
    sigmoid,
    softmax,
    sqrt,
    squeeze,
    stack,
    tanh,
    where,
)
from repro.tensor.profiler import TapeProfile
from repro.tensor.serialization import load_arrays, save_arrays

__all__ = [
    "NumericalAnomaly",
    "OpRecord",
    "detect_anomaly",
    "is_anomaly_enabled",
    "provenance_of",
    "DEFAULT_DTYPE",
    "Tensor",
    "ensure_tensor",
    "is_grad_enabled",
    "no_grad",
    "Arena",
    "lazy",
    "compile_graph",
    "fusion_context",
    "is_lazy_enabled",
    "resolve_fusion",
    "set_fusion_enabled",
    "GradientCheckError",
    "check_finite_gradients",
    "check_gradients",
    "numerical_gradient",
    "abs_",
    "clip",
    "concat",
    "dropout",
    "embedding_lookup",
    "exp",
    "expand_dims",
    "gather_rows",
    "log",
    "log_softmax",
    "masked_fill",
    "max_",
    "maximum",
    "minimum",
    "relu",
    "sigmoid",
    "softmax",
    "sqrt",
    "squeeze",
    "stack",
    "tanh",
    "where",
    "load_arrays",
    "save_arrays",
    "TapeProfile",
]
