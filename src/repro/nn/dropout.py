"""Dropout layer (Srivastava et al. 2014), the paper uses p = 0.3."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor.core import Tensor
from repro.tensor.ops import dropout

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode.

    Each instance owns its own ``numpy.random.Generator`` so a fixed
    construction seed makes the whole training run deterministic.
    """

    def __init__(self, p: float, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return dropout(x, self.p, self._rng, training=self.training)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
