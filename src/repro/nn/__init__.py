"""Neural network layers built on :mod:`repro.tensor`.

Contains every architectural component the paper's Section 3 needs: LSTM
cells and stacks, the bidirectional encoder, global attention, embeddings
(with GloVe-style pre-trained init), dropout, and sequence losses.
"""

from repro.nn.attention import GlobalAttention
from repro.nn.dropout import Dropout
from repro.nn.embedding import Embedding
from repro.nn.linear import Linear
from repro.nn.loss import PROBABILITY_FLOOR, cross_entropy, nll_loss, sequence_nll
from repro.nn.lstm import LSTM, BidirectionalLSTM, LSTMCell
from repro.nn.module import Module, Parameter
from repro.nn.numerics import (
    EXP_MAX,
    GATE_EPS,
    TINY,
    safe_div,
    safe_exp,
    safe_log,
    safe_sqrt,
    saturating_sigmoid,
)

__all__ = [
    "GlobalAttention",
    "Dropout",
    "Embedding",
    "Linear",
    "PROBABILITY_FLOOR",
    "cross_entropy",
    "nll_loss",
    "sequence_nll",
    "LSTM",
    "BidirectionalLSTM",
    "LSTMCell",
    "Module",
    "Parameter",
    "EXP_MAX",
    "GATE_EPS",
    "TINY",
    "safe_div",
    "safe_exp",
    "safe_log",
    "safe_sqrt",
    "saturating_sigmoid",
]
