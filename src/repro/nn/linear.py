"""Affine projection layer."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor.core import Tensor

__all__ = ["Linear"]


class Linear(Module):
    """``y = x @ W^T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output dimensionality.
    rng:
        Generator used for weight init.
    bias:
        Whether to add the learned offset.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (
            f"Linear(in={self.in_features}, out={self.out_features}, "
            f"bias={self.bias is not None})"
        )
