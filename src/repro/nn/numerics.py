"""Blessed guarded numerical helpers.

The ACNN objective chains softmax, the sigmoid switch gate, and ``log`` of
a two-way probability mixture (paper Eq. 5-7) — the exact composition that
silently produces ``-inf`` losses and NaN gradients under large logits or a
saturated gate (CopyNet's log-mixture instability; Gu et al. 2016). This
module is the single home for the guarded forms of the dangerous
primitives; ``scripts/lint_numerics.py`` flags raw ``np.log`` / ``np.exp``
/ ``np.sqrt`` and bare division on tensor data anywhere else in
``src/repro`` unless the site carries an explicit ``# numerics: ok`` waiver.

Two families:

- **Tensor helpers** (``safe_log``, ``safe_exp``, ``safe_sqrt``,
  ``safe_div``, ``saturating_sigmoid``) build on the tape ops and are
  differentiable; on well-conditioned inputs they are byte-identical to
  the raw op.
- **Array helpers** (``np_safe_log``, ``np_smoothed_log``, ``np_safe_exp``,
  ``np_safe_div``, ``np_bernoulli_entropy``) guard plain-numpy call sites
  (decode paths, statistics) without touching the tape.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.core import Tensor, ensure_tensor
from repro.tensor.ops import clip, exp, log, sigmoid, sqrt

__all__ = [
    "TINY",
    "EXP_MAX",
    "GATE_EPS",
    "safe_log",
    "safe_exp",
    "safe_sqrt",
    "safe_div",
    "saturating_sigmoid",
    "np_safe_log",
    "np_smoothed_log",
    "np_safe_exp",
    "np_safe_div",
    "np_bernoulli_entropy",
]

TINY = 1e-12
"""Default probability floor: small enough not to disturb any real mass,
large enough that ``log`` stays finite (``log(1e-12) ≈ -27.6``)."""

EXP_MAX = 709.0
"""Largest input ``exp`` accepts in float64 without overflowing to inf."""

GATE_EPS = 1e-12
"""The Eq. 4 switch gate is clamped to ``[GATE_EPS, 1 - GATE_EPS]`` so a
saturated gate can never zero out one side of the Eq. 2 mixture exactly."""


# ----------------------------------------------------------------------
# Tensor helpers (differentiable, tape-recorded)
# ----------------------------------------------------------------------
def safe_log(x: Tensor, floor: float = TINY, ceiling: float | None = None) -> Tensor:
    """``log`` of ``x`` clamped into ``[floor, ceiling]`` — never ``-inf``.

    The clamp uses :func:`repro.tensor.ops.clip`, so gradients are zero in
    the clamped region (the same convention as the pre-existing Eq. 7 loss
    guard) and values inside the range are untouched bit-for-bit.
    """
    high = np.inf if ceiling is None else ceiling
    return log(clip(ensure_tensor(x), floor, high))


def safe_exp(x: Tensor, max_input: float = EXP_MAX) -> Tensor:
    """``exp`` with the input clamped to ``<= max_input`` — never ``inf``."""
    return exp(clip(ensure_tensor(x), -np.inf, max_input))


def safe_sqrt(x: Tensor, floor: float = 0.0) -> Tensor:
    """``sqrt`` of ``x`` clamped to ``>= floor`` — never NaN on tiny
    negative values produced by cancellation."""
    return sqrt(clip(ensure_tensor(x), floor, np.inf))


def safe_div(x: Tensor, denominator: Tensor, eps: float = TINY) -> Tensor:
    """``x / max(denominator, eps)`` for non-negative denominators.

    Guards the division-by-a-sum pattern (attention normalizers, token
    averages) where the denominator is mathematically ``>= 0`` but can be
    exactly zero on degenerate inputs (empty rows, fully-masked spans).
    """
    return ensure_tensor(x) / clip(ensure_tensor(denominator), eps, np.inf)


def saturating_sigmoid(x: Tensor, eps: float = GATE_EPS) -> Tensor:
    """Sigmoid clamped to ``[eps, 1 - eps]`` — cannot return exact 0/1.

    Used for the Eq. 4 copy/generate switch: an exactly-saturated gate
    multiplies one mixture branch by exactly zero, so a target token only
    reachable through that branch gets probability 0 and the Eq. 7 log
    goes to the floor with a dead gradient. For any logit the stable
    sigmoid keeps strictly inside ``(eps, 1 - eps)`` (|logit| up to ~27)
    the output is byte-identical to :func:`repro.tensor.ops.sigmoid`.
    """
    return clip(sigmoid(ensure_tensor(x)), eps, 1.0 - eps)


# ----------------------------------------------------------------------
# Array helpers (plain numpy, for decode paths and statistics)
# ----------------------------------------------------------------------
def np_safe_log(array: np.ndarray, floor: float = TINY) -> np.ndarray:
    """``log(maximum(array, floor))`` — the clamped log for raw arrays."""
    return np.log(np.maximum(array, floor))  # numerics: ok — clamped input


def np_smoothed_log(array: np.ndarray, floor: float = TINY) -> np.ndarray:
    """``log(array + floor)`` — additive-floor log for probability arrays.

    Matches the decoder's historical Eq. 2 guard (``log(P + 1e-12)``)
    bit-for-bit, so switching call sites to this helper cannot move beam
    scores; prefer :func:`np_safe_log` for new code.
    """
    return np.log(array + floor)  # numerics: ok — additive floor keeps input > 0


def np_safe_exp(array: np.ndarray, max_input: float = EXP_MAX) -> np.ndarray:
    """``exp`` with the input clamped so the result never overflows."""
    return np.exp(np.minimum(array, max_input))  # numerics: ok — clamped input


def np_safe_div(
    numerator: np.ndarray, denominator: np.ndarray, eps: float = TINY
) -> np.ndarray:
    """``numerator / maximum(denominator, eps)`` for non-negative denominators."""
    return numerator / np.maximum(denominator, eps)  # numerics: ok — clamped denominator


def np_bernoulli_entropy(z: np.ndarray, eps: float = TINY) -> np.ndarray:
    """Elementwise Bernoulli entropy ``-z ln z - (1-z) ln (1-z)`` in nats.

    ``z`` is clamped into ``[eps, 1 - eps]`` first, so saturated gate
    values report ~0 entropy instead of ``0 * log(0) = nan``.
    """
    clipped = np.clip(z, eps, 1.0 - eps)
    return -(clipped * np.log(clipped) + (1.0 - clipped) * np.log(1.0 - clipped))  # numerics: ok — clamped input
