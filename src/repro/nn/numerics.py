"""Blessed guarded numerical helpers.

The ACNN objective chains softmax, the sigmoid switch gate, and ``log`` of
a two-way probability mixture (paper Eq. 5-7) — the exact composition that
silently produces ``-inf`` losses and NaN gradients under large logits or a
saturated gate (CopyNet's log-mixture instability; Gu et al. 2016). This
module is the single home for the guarded forms of the dangerous
primitives; ``scripts/lint_numerics.py`` flags raw ``np.log`` / ``np.exp``
/ ``np.sqrt`` and bare division on tensor data anywhere else in
``src/repro`` unless the site carries an explicit ``# numerics: ok`` waiver.

Two families:

- **Tensor helpers** (``safe_log``, ``safe_exp``, ``safe_sqrt``,
  ``safe_div``, ``saturating_sigmoid``) build on the tape ops and are
  differentiable; on well-conditioned inputs they are byte-identical to
  the raw op.
- **Array helpers** (``np_safe_log``, ``np_smoothed_log``, ``np_safe_exp``,
  ``np_safe_div``, ``np_bernoulli_entropy``) guard plain-numpy call sites
  (decode paths, statistics) without touching the tape.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.core import Tensor, ensure_tensor
from repro.tensor.ops import clip, exp, log, sigmoid, sqrt

__all__ = [
    "TINY",
    "EXP_MAX",
    "GATE_EPS",
    "safe_log",
    "safe_exp",
    "safe_sqrt",
    "safe_div",
    "saturating_sigmoid",
    "np_safe_log",
    "np_smoothed_log",
    "np_safe_exp",
    "np_safe_div",
    "np_bernoulli_entropy",
    "np_fast_sigmoid",
    "np_stable_softmax",
]

TINY = 1e-12
"""Default probability floor: small enough not to disturb any real mass,
large enough that ``log`` stays finite (``log(1e-12) ≈ -27.6``)."""

EXP_MAX = 709.0
"""Largest input ``exp`` accepts in float64 without overflowing to inf."""

GATE_EPS = 1e-12
"""The Eq. 4 switch gate is clamped to ``[GATE_EPS, 1 - GATE_EPS]`` so a
saturated gate can never zero out one side of the Eq. 2 mixture exactly."""


# ----------------------------------------------------------------------
# Tensor helpers (differentiable, tape-recorded)
# ----------------------------------------------------------------------
def safe_log(x: Tensor, floor: float = TINY, ceiling: float | None = None) -> Tensor:
    """``log`` of ``x`` clamped into ``[floor, ceiling]`` — never ``-inf``.

    The clamp uses :func:`repro.tensor.ops.clip`, so gradients are zero in
    the clamped region (the same convention as the pre-existing Eq. 7 loss
    guard) and values inside the range are untouched bit-for-bit.
    """
    high = np.inf if ceiling is None else ceiling
    return log(clip(ensure_tensor(x), floor, high))


def safe_exp(x: Tensor, max_input: float = EXP_MAX) -> Tensor:
    """``exp`` with the input clamped to ``<= max_input`` — never ``inf``."""
    return exp(clip(ensure_tensor(x), -np.inf, max_input))


def safe_sqrt(x: Tensor, floor: float = 0.0) -> Tensor:
    """``sqrt`` of ``x`` clamped to ``>= floor`` — never NaN on tiny
    negative values produced by cancellation."""
    return sqrt(clip(ensure_tensor(x), floor, np.inf))


def safe_div(x: Tensor, denominator: Tensor, eps: float = TINY) -> Tensor:
    """``x / max(denominator, eps)`` for non-negative denominators.

    Guards the division-by-a-sum pattern (attention normalizers, token
    averages) where the denominator is mathematically ``>= 0`` but can be
    exactly zero on degenerate inputs (empty rows, fully-masked spans).
    """
    return ensure_tensor(x) / clip(ensure_tensor(denominator), eps, np.inf)


def saturating_sigmoid(x: Tensor, eps: float = GATE_EPS) -> Tensor:
    """Sigmoid clamped to ``[eps, 1 - eps]`` — cannot return exact 0/1.

    Used for the Eq. 4 copy/generate switch: an exactly-saturated gate
    multiplies one mixture branch by exactly zero, so a target token only
    reachable through that branch gets probability 0 and the Eq. 7 log
    goes to the floor with a dead gradient. For any logit the stable
    sigmoid keeps strictly inside ``(eps, 1 - eps)`` (|logit| up to ~27)
    the output is byte-identical to :func:`repro.tensor.ops.sigmoid`.
    """
    return clip(sigmoid(ensure_tensor(x)), eps, 1.0 - eps)


# ----------------------------------------------------------------------
# Array helpers (plain numpy, for decode paths and statistics)
# ----------------------------------------------------------------------
def np_safe_log(array: np.ndarray, floor: float = TINY) -> np.ndarray:
    """``log(maximum(array, floor))`` — the clamped log for raw arrays."""
    return np.log(np.maximum(array, floor))  # numerics: ok — clamped input


def np_smoothed_log(array: np.ndarray, floor: float = TINY) -> np.ndarray:
    """``log(array + floor)`` — additive-floor log for probability arrays.

    Matches the decoder's historical Eq. 2 guard (``log(P + 1e-12)``)
    bit-for-bit, so switching call sites to this helper cannot move beam
    scores; prefer :func:`np_safe_log` for new code.
    """
    return np.log(array + floor)  # numerics: ok — additive floor keeps input > 0


def np_safe_exp(array: np.ndarray, max_input: float = EXP_MAX) -> np.ndarray:
    """``exp`` with the input clamped so the result never overflows."""
    return np.exp(np.minimum(array, max_input))  # numerics: ok — clamped input


def np_safe_div(
    numerator: np.ndarray, denominator: np.ndarray, eps: float = TINY
) -> np.ndarray:
    """``numerator / maximum(denominator, eps)`` for non-negative denominators."""
    return numerator / np.maximum(denominator, eps)  # numerics: ok — clamped denominator


def np_fast_sigmoid(x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """The LSTM gate sigmoid ``1 / (1 + exp(-x))``, optionally in-place.

    Bit-for-bit twin of the historical ``repro.nn.functional`` gate
    nonlinearity: ``exp`` overflow for very negative inputs saturates to
    exactly 0.0 (the correct limit; the harmless warning is suppressed),
    and NaN inputs propagate to NaN outputs so anomaly detection still
    fires. With ``out`` given, every intermediate runs in-place — the
    arena-replay form used by the fused kernels — producing the same
    bytes as the allocating form.
    """
    with np.errstate(over="ignore"):
        if out is None:
            return 1.0 / (1.0 + np.exp(-x))  # numerics: ok — denominator >= 1; overflow saturates to the correct limit
        np.negative(x, out=out)
        np.exp(out, out=out)  # numerics: ok — overflow saturates the sigmoid to exactly 0, the correct limit
        out += 1.0
        np.divide(1.0, out, out=out)  # numerics: ok — denominator >= 1 by construction
        return out


def np_stable_softmax(
    scores: np.ndarray, axis: int = -1, out: np.ndarray | None = None
) -> np.ndarray:
    """Max-shifted softmax, byte-identical to :func:`repro.tensor.ops.softmax`.

    The numpy-level twin of the tape op's stabilized kernel, for the fused
    kernels and decode paths: the classic max-shift handles arbitrarily
    large finite logits, rows that are entirely ``-inf`` (fully masked)
    return all-zero rows instead of NaN, and NaN / ``+inf`` inputs are
    *not* laundered — they propagate so divergence stays detectable. With
    ``out`` given the exponentials and the normalization run in-place
    (only the per-row max/denominator, ``size / row_length`` elements,
    allocate). ``tests/nn/test_numerics.py`` pins byte-identity against
    the tape op on well-conditioned and fully-masked inputs.
    """
    max_ = scores.max(axis=axis, keepdims=True)
    neginf = np.isneginf(max_)
    if neginf.any():
        max_ = np.where(neginf, 0.0, max_)
    if out is None:
        shifted = scores - max_
        exp_x = np.exp(shifted)  # numerics: ok — max-shifted input <= 0 (or -inf rows)
    else:
        np.subtract(scores, max_, out=out)
        np.exp(out, out=out)  # numerics: ok — max-shifted input <= 0 (or -inf rows)
        exp_x = out
    denom = exp_x.sum(axis=axis, keepdims=True)
    zero = denom == 0.0
    if zero.any():
        # Fully-masked rows: no mass anywhere; return zeros, not NaN.
        denom = np.where(zero, 1.0, denom)
    if out is None:
        return exp_x / denom  # numerics: ok — denominator guarded > 0
    np.divide(exp_x, denom, out=out)  # numerics: ok — denominator guarded > 0
    return out


def np_bernoulli_entropy(z: np.ndarray, eps: float = TINY) -> np.ndarray:
    """Elementwise Bernoulli entropy ``-z ln z - (1-z) ln (1-z)`` in nats.

    ``z`` is clamped into ``[eps, 1 - eps]`` first, so saturated gate
    values report ~0 entropy instead of ``0 * log(0) = nan``.
    """
    clipped = np.clip(z, eps, 1.0 - eps)
    return -(clipped * np.log(clipped) + (1.0 - clipped) * np.log(1.0 - clipped))  # numerics: ok — clamped input
