"""Sequence losses.

Training maximizes ``P(y | x) = prod_k P(y_k | y_<k, x)`` (Eq. 1 of the
paper), i.e. minimizes the per-token negative log-likelihood, with padding
positions masked out of the average.
"""

from __future__ import annotations

import numpy as np

from repro.nn.numerics import safe_log
from repro.tensor.core import Tensor
from repro.tensor.ops import gather_rows, log_softmax

__all__ = ["nll_loss", "cross_entropy", "sequence_nll", "PROBABILITY_FLOOR"]

# Mixture probabilities (Eq. 2) are clamped here before the log so a
# confidently-wrong copy gate cannot produce -inf loss.
PROBABILITY_FLOOR = 1e-12


def nll_loss(log_probs: Tensor, targets: np.ndarray, mask: np.ndarray | None = None) -> Tensor:
    """Mean negative log-likelihood over a batch.

    Parameters
    ----------
    log_probs:
        ``(B, V)`` log-probabilities.
    targets:
        ``(B,)`` integer class ids.
    mask:
        Optional ``(B,)`` float/bool weights; masked-out entries (0/False)
        do not contribute to the mean.
    """
    picked = gather_rows(log_probs, np.asarray(targets))
    if mask is None:
        return -picked.mean()
    weights = np.asarray(mask, dtype=float)
    total = weights.sum()
    if total == 0:
        raise ValueError("nll_loss mask excludes every element")
    return -(picked * Tensor(weights)).sum() * (1.0 / total)  # numerics: ok — total == 0 raises above


def cross_entropy(logits: Tensor, targets: np.ndarray, mask: np.ndarray | None = None) -> Tensor:
    """Softmax cross-entropy from raw logits."""
    return nll_loss(log_softmax(logits, axis=-1), targets, mask=mask)


def sequence_nll(
    step_probs: list[Tensor],
    targets: np.ndarray,
    pad_mask: np.ndarray,
) -> Tensor:
    """Token-averaged NLL over a decoded sequence of *probabilities*.

    Used for the ACNN mixture output, which is a probability (not a logit):
    Eq. 2 produces ``P(y_k) = z_k P_cop + (1 - z_k) P_att`` directly.

    Parameters
    ----------
    step_probs:
        List of ``(B,)`` tensors, the model probability assigned to the gold
        token at each decoding step.
    targets:
        ``(B, T)`` gold token ids (only used for shape validation).
    pad_mask:
        ``(B, T)`` boolean array, True at padding positions (excluded).
    """
    targets = np.asarray(targets)
    if targets.shape[1] != len(step_probs):
        raise ValueError(
            f"got {len(step_probs)} step probabilities for target length {targets.shape[1]}"
        )
    valid = ~np.asarray(pad_mask, dtype=bool)
    total_tokens = valid.sum()
    if total_tokens == 0:
        raise ValueError("sequence_nll: every target position is padding")

    loss_terms = []
    for k, prob in enumerate(step_probs):
        log_p = safe_log(prob, floor=PROBABILITY_FLOOR, ceiling=1.0)
        weight = Tensor(valid[:, k].astype(float))
        loss_terms.append((log_p * weight).sum())
    total = loss_terms[0]
    for term in loss_terms[1:]:
        total = total + term
    return -total * (1.0 / float(total_tokens))
