"""Weight initializers.

The paper builds on OpenNMT, whose classic default is uniform initialization
in ``[-0.1, 0.1]``; Xavier/Glorot is provided for the linear projections.
All initializers take an explicit ``numpy.random.Generator`` so experiments
are reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["uniform", "xavier_uniform", "zeros", "normal"]


def uniform(shape: tuple[int, ...], rng: np.random.Generator, scale: float = 0.1) -> np.ndarray:
    """Uniform init in ``[-scale, scale]`` (OpenNMT's param_init default)."""
    return rng.uniform(-scale, scale, size=shape)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot & Bengio (2010) uniform init for 2-D weight matrices."""
    if len(shape) != 2:
        raise ValueError(f"xavier_uniform expects a 2-D shape, got {shape}")
    fan_out, fan_in = shape
    limit = np.sqrt(6.0 / (fan_in + fan_out))  # numerics: ok — fan_in + fan_out >= 1 for real layers
    return rng.uniform(-limit, limit, size=shape)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.01) -> np.ndarray:
    """Zero-mean Gaussian init."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros init (biases)."""
    return np.zeros(shape)
