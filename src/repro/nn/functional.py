"""Fused neural-network ops with hand-written backwards.

The recurrent models spend their time in the LSTM cell; expressing the cell
as ~16 elementary tape ops per timestep makes Python-level graph overhead
the bottleneck. The fused ops here compute a whole cell step as ONE tape
node whose output stacks ``[h_new ; c_new]`` along the feature axis; callers
split it with two cheap basic slices. The math is identical to the
elementary-op formulation (the test suite gradchecks it and compares the two
directly).

Two variants:

- :func:`lstm_cell_step` — self-contained step (used for single-step
  decoding).
- :func:`lstm_cell_step_preprojected` — takes ``x @ W_ih^T + b`` computed
  outside, so a full sequence can batch its input projections into one big
  matmul (used by :class:`repro.nn.lstm.LSTM` over whole sequences).

Gate layout in the fused weights is ``[input, forget, cell, output]``,
matching :class:`repro.nn.lstm.LSTMCell`.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.core import Tensor

__all__ = ["lstm_cell_step", "lstm_cell_step_preprojected"]


def _fast_sigmoid(x: np.ndarray) -> np.ndarray:
    # exp overflow for very negative inputs saturates to exactly 0.0, which
    # is the correct limit; suppress the harmless warning.
    with np.errstate(over="ignore"):
        return 1.0 / (1.0 + np.exp(-x))  # numerics: ok — denominator >= 1; overflow saturates to the correct limit


def _fused_core(
    gates: np.ndarray,
    h_prev: Tensor,
    c_prev: Tensor,
    weight_hh: Tensor,
    parents: tuple[Tensor, ...],
    input_backward,
) -> tuple[Tensor, Tensor]:
    """Shared forward/backward around precomputed gate pre-activations.

    ``input_backward(d_gates)`` propagates the gate gradient to whatever
    produced the input-side projection (either the raw x and W_ih, or the
    pre-projected tensor).
    """
    hidden = h_prev.data.shape[1]
    i_gate = _fast_sigmoid(gates[:, :hidden])
    f_gate = _fast_sigmoid(gates[:, hidden: 2 * hidden])
    g_gate = np.tanh(gates[:, 2 * hidden: 3 * hidden])
    o_gate = _fast_sigmoid(gates[:, 3 * hidden:])
    c_new = f_gate * c_prev.data + i_gate * g_gate
    tanh_c_new = np.tanh(c_new)
    h_new = o_gate * tanh_c_new

    out_data = np.concatenate([h_new, c_new], axis=1)

    def backward(d_out: np.ndarray) -> None:
        d_h = d_out[:, :hidden]
        d_c = d_out[:, hidden:].copy()
        d_o = d_h * tanh_c_new * o_gate * (1.0 - o_gate)
        d_c += d_h * o_gate * (1.0 - tanh_c_new * tanh_c_new)

        d_gates = np.empty_like(gates)
        d_gates[:, :hidden] = d_c * g_gate * i_gate * (1.0 - i_gate)
        d_gates[:, hidden: 2 * hidden] = d_c * c_prev.data * f_gate * (1.0 - f_gate)
        d_gates[:, 2 * hidden: 3 * hidden] = d_c * i_gate * (1.0 - g_gate * g_gate)
        d_gates[:, 3 * hidden:] = d_o

        input_backward(d_gates)
        if h_prev.requires_grad:
            h_prev._accumulate_grad(d_gates @ weight_hh.data)
        if c_prev.requires_grad:
            c_prev._accumulate_grad(d_c * f_gate)
        if weight_hh.requires_grad:
            weight_hh._accumulate_grad(d_gates.T @ h_prev.data)

    out = Tensor._from_op(out_data, parents, backward)
    return out[:, :hidden], out[:, hidden:]


def lstm_cell_step(
    x: Tensor,
    h_prev: Tensor,
    c_prev: Tensor,
    weight_ih: Tensor,
    weight_hh: Tensor,
    bias: Tensor,
) -> tuple[Tensor, Tensor]:
    """One LSTM step as a single fused autodiff operation.

    Parameters
    ----------
    x:
        ``(B, input_size)`` step input.
    h_prev, c_prev:
        ``(B, H)`` previous hidden and cell state.
    weight_ih, weight_hh, bias:
        ``(4H, input_size)``, ``(4H, H)``, ``(4H,)`` fused gate parameters.

    Returns
    -------
    h_new, c_new:
        ``(B, H)`` tensors (two views of one fused tape node).
    """
    gates = x.data @ weight_ih.data.T + h_prev.data @ weight_hh.data.T + bias.data

    def input_backward(d_gates: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate_grad(d_gates @ weight_ih.data)
        if weight_ih.requires_grad:
            weight_ih._accumulate_grad(d_gates.T @ x.data)
        if bias.requires_grad:
            bias._accumulate_grad(d_gates.sum(axis=0))

    parents = (x, h_prev, c_prev, weight_ih, weight_hh, bias)
    return _fused_core(gates, h_prev, c_prev, weight_hh, parents, input_backward)


def lstm_cell_step_preprojected(
    x_projected: Tensor,
    h_prev: Tensor,
    c_prev: Tensor,
    weight_hh: Tensor,
) -> tuple[Tensor, Tensor]:
    """LSTM step whose input projection ``x @ W_ih^T + b`` was precomputed.

    Lets a sequence model compute all timesteps' input projections in one
    batched matmul and feed per-step ``(B, 4H)`` slices here.
    """
    gates = x_projected.data + h_prev.data @ weight_hh.data.T

    def input_backward(d_gates: np.ndarray) -> None:
        if x_projected.requires_grad:
            x_projected._accumulate_grad(d_gates)

    parents = (x_projected, h_prev, c_prev, weight_hh)
    return _fused_core(gates, h_prev, c_prev, weight_hh, parents, input_backward)
