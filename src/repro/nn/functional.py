"""Fused neural-network ops with hand-written backwards.

The recurrent models spend their time in the LSTM cell; expressing the cell
as ~16 elementary tape ops per timestep makes Python-level graph overhead
the bottleneck. The fused ops here compute a whole cell step as ONE tape
node whose output stacks ``[h_new ; c_new]`` along the feature axis; callers
split it with two cheap basic slices. The math is identical to the
elementary-op formulation (the test suite gradchecks it and compares the two
directly).

Two variants:

- :func:`lstm_cell_step` — self-contained step (used for single-step
  decoding).
- :func:`lstm_cell_step_preprojected` — takes ``x @ W_ih^T + b`` computed
  outside, so a full sequence can batch its input projections into one big
  matmul (used by :class:`repro.nn.lstm.LSTM` over whole sequences).

Gate layout in the fused weights is ``[input, forget, cell, output]``,
matching :class:`repro.nn.lstm.LSTMCell`.

Lazy mode (:mod:`repro.tensor.lazy`) extends the same idea one level up:

- inside a ``lazy()`` context with gradients disabled, the single-step
  LSTM kernels replay through preallocated arena buffers (zero per-step
  allocation) instead of building even their one tape node;
- :func:`fused_attention` collapses the attention score→mask→softmax→
  context chain (~10 tape ops in :class:`repro.nn.attention.GlobalAttention`)
  into one node with a hand-written backward, and
  :func:`fused_pointer_probs` does the same for the ACNN Eq. 3 copy-score
  chain; both gain the arena replay under ``no_grad``.

Every kernel performs the same numpy operations in the same order as its
elementary-op formulation, so forward outputs are byte-identical; the
transcendentals route through :mod:`repro.nn.numerics` so the
byte-identity and NaN-propagation contracts hold (and
``scripts/lint_numerics.py`` treats this file as waiver-proof for raw
``np.log``/``np.exp``/``np.sqrt``).
"""

from __future__ import annotations

import numpy as np

from repro.nn.numerics import np_fast_sigmoid, np_stable_softmax
from repro.tensor.core import Tensor
from repro.tensor.lazy import arena_fast_path

__all__ = [
    "lstm_cell_step",
    "lstm_cell_step_preprojected",
    "fused_attention",
    "fused_pointer_probs",
]


def _fast_sigmoid(x: np.ndarray) -> np.ndarray:
    return np_fast_sigmoid(x)


def _fused_core(
    gates: np.ndarray,
    h_prev: Tensor,
    c_prev: Tensor,
    weight_hh: Tensor,
    parents: tuple[Tensor, ...],
    input_backward,
) -> tuple[Tensor, Tensor]:
    """Shared forward/backward around precomputed gate pre-activations.

    ``input_backward(d_gates)`` propagates the gate gradient to whatever
    produced the input-side projection (either the raw x and W_ih, or the
    pre-projected tensor).
    """
    hidden = h_prev.data.shape[1]
    i_gate = _fast_sigmoid(gates[:, :hidden])
    f_gate = _fast_sigmoid(gates[:, hidden: 2 * hidden])
    g_gate = np.tanh(gates[:, 2 * hidden: 3 * hidden])
    o_gate = _fast_sigmoid(gates[:, 3 * hidden:])
    c_new = f_gate * c_prev.data + i_gate * g_gate
    tanh_c_new = np.tanh(c_new)
    h_new = o_gate * tanh_c_new

    out_data = np.concatenate([h_new, c_new], axis=1)

    def backward(d_out: np.ndarray) -> None:
        d_h = d_out[:, :hidden]
        d_c = d_out[:, hidden:].copy()
        d_o = d_h * tanh_c_new * o_gate * (1.0 - o_gate)
        d_c += d_h * o_gate * (1.0 - tanh_c_new * tanh_c_new)

        d_gates = np.empty_like(gates)
        d_gates[:, :hidden] = d_c * g_gate * i_gate * (1.0 - i_gate)
        d_gates[:, hidden: 2 * hidden] = d_c * c_prev.data * f_gate * (1.0 - f_gate)
        d_gates[:, 2 * hidden: 3 * hidden] = d_c * i_gate * (1.0 - g_gate * g_gate)
        d_gates[:, 3 * hidden:] = d_o

        input_backward(d_gates)
        if h_prev.requires_grad:
            h_prev._accumulate_grad(d_gates @ weight_hh.data)
        if c_prev.requires_grad:
            c_prev._accumulate_grad(d_c * f_gate)
        if weight_hh.requires_grad:
            weight_hh._accumulate_grad(d_gates.T @ h_prev.data)

    out = Tensor._from_op(out_data, parents, backward)
    return out[:, :hidden], out[:, hidden:]


def _lstm_step_arena(
    arena,
    kid: int,
    gates: np.ndarray,
    c_prev: np.ndarray,
    hidden: int,
) -> tuple[Tensor, Tensor]:
    """Arena-replayed elementwise tail of one LSTM step.

    ``gates`` is the ``(B, 4H)`` pre-activation arena buffer (consumed
    in-place); ``kid`` keys the slots so cells that share shapes (stacked
    layers, encoder vs decoder) never alias. The op sequence mirrors
    :func:`_fused_core` exactly — same ufuncs, same order — so the bytes
    match the eager path. Outputs use ``rotate=2`` buffers: step ``t+1``
    reads the state written at step ``t`` while writing the other buffer.
    """
    i_gate = gates[:, :hidden]
    f_gate = gates[:, hidden: 2 * hidden]
    g_gate = gates[:, 2 * hidden: 3 * hidden]
    o_gate = gates[:, 3 * hidden:]
    np_fast_sigmoid(i_gate, out=i_gate)
    np_fast_sigmoid(f_gate, out=f_gate)
    np.tanh(g_gate, out=g_gate)
    np_fast_sigmoid(o_gate, out=o_gate)

    batch = gates.shape[0]
    c_new = arena.buffer(("lstm.c", kid), (batch, hidden), rotate=2)
    np.multiply(f_gate, c_prev, out=c_new)
    scratch = arena.buffer(("lstm.ig", kid), (batch, hidden))
    np.multiply(i_gate, g_gate, out=scratch)
    c_new += scratch
    np.tanh(c_new, out=scratch)
    h_new = arena.buffer(("lstm.h", kid), (batch, hidden), rotate=2)
    np.multiply(o_gate, scratch, out=h_new)
    return Tensor(h_new), Tensor(c_new)


def lstm_cell_step(
    x: Tensor,
    h_prev: Tensor,
    c_prev: Tensor,
    weight_ih: Tensor,
    weight_hh: Tensor,
    bias: Tensor,
) -> tuple[Tensor, Tensor]:
    """One LSTM step as a single fused autodiff operation.

    Parameters
    ----------
    x:
        ``(B, input_size)`` step input.
    h_prev, c_prev:
        ``(B, H)`` previous hidden and cell state.
    weight_ih, weight_hh, bias:
        ``(4H, input_size)``, ``(4H, H)``, ``(4H,)`` fused gate parameters.

    Returns
    -------
    h_new, c_new:
        ``(B, H)`` tensors (two views of one fused tape node).

    Inside ``lazy()`` with gradients off (the decode hot path) the whole
    step replays through arena buffers: the gate matmuls write into a
    preallocated ``(B, 4H)`` buffer, activations run in-place on its
    slices, and the new states land in ping-pong buffers — zero per-step
    allocation after the first (trace) call per shape signature.
    """
    arena = arena_fast_path()
    if arena is not None:
        batch = x.data.shape[0]
        hidden = h_prev.data.shape[1]
        kid = id(weight_hh)
        gates = arena.buffer(("lstm.gates", kid), (batch, 4 * hidden))
        np.matmul(x.data, weight_ih.data.T, out=gates)
        hh = arena.buffer(("lstm.hh", kid), (batch, 4 * hidden))
        np.matmul(h_prev.data, weight_hh.data.T, out=hh)
        gates += hh
        gates += bias.data
        return _lstm_step_arena(arena, kid, gates, c_prev.data, hidden)

    gates = x.data @ weight_ih.data.T + h_prev.data @ weight_hh.data.T + bias.data

    def input_backward(d_gates: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate_grad(d_gates @ weight_ih.data)
        if weight_ih.requires_grad:
            weight_ih._accumulate_grad(d_gates.T @ x.data)
        if bias.requires_grad:
            bias._accumulate_grad(d_gates.sum(axis=0))

    parents = (x, h_prev, c_prev, weight_ih, weight_hh, bias)
    return _fused_core(gates, h_prev, c_prev, weight_hh, parents, input_backward)


def lstm_cell_step_preprojected(
    x_projected: Tensor,
    h_prev: Tensor,
    c_prev: Tensor,
    weight_hh: Tensor,
) -> tuple[Tensor, Tensor]:
    """LSTM step whose input projection ``x @ W_ih^T + b`` was precomputed.

    Lets a sequence model compute all timesteps' input projections in one
    batched matmul and feed per-step ``(B, 4H)`` slices here.

    Deliberately *not* arena-replayed: the sequence forward collects every
    timestep's ``h`` and stacks them afterwards, so outputs must outlive
    the step loop — ping-pong buffers would be overwritten two steps
    later. The encode pass is one batched matmul plus T cheap steps;
    the decode loop (``lstm_cell_step``) is where arena replay pays.
    """
    gates = x_projected.data + h_prev.data @ weight_hh.data.T

    def input_backward(d_gates: np.ndarray) -> None:
        if x_projected.requires_grad:
            x_projected._accumulate_grad(d_gates)

    parents = (x_projected, h_prev, c_prev, weight_hh)
    return _fused_core(gates, h_prev, c_prev, weight_hh, parents, input_backward)


# ----------------------------------------------------------------------
# Fused attention / pointer-score chains
# ----------------------------------------------------------------------
def fused_attention(
    decoder_state: Tensor,
    encoder_states: Tensor,
    weight: Tensor,
    pad_mask: np.ndarray | None = None,
    mask_value: float = -1e9,
) -> tuple[Tensor, Tensor]:
    """The whole global-attention chain as ONE tape node.

    Computes, exactly as :class:`repro.nn.attention.GlobalAttention` does
    with elementary ops (same numpy calls, same order — byte-identical
    outputs)::

        projected = decoder_state @ weight              # (B, E)
        scores    = tanh((projected[:,None,:] * enc).sum(2))   # (B, T)
        scores[pad] = mask_value
        weights   = softmax(scores, axis=1)             # stable kernel
        context   = (weights[:,:,None] * enc).sum(1)    # (B, E)

    Under gradients this is a single node whose packed output is
    ``[context ; weights]`` along axis 1, split by two basic slices;
    the hand-written backward is gradcheck-pinned against the eager
    chain. Inside ``lazy()`` with gradients off, every intermediate
    lands in arena buffers (zero per-step allocation on replay).

    Coverage-mode attention is NOT expressible here (it mixes an
    accumulated history tensor into the scores); callers keep the
    elementary-op path for that case.
    """
    d = decoder_state.data
    enc = encoder_states.data
    W = weight.data
    batch, src_len, enc_size = enc.shape

    arena = arena_fast_path()
    if arena is not None:
        kid = id(weight)
        projected = arena.buffer(("attn.proj", kid), (batch, enc_size))
        np.matmul(d, W, out=projected)
        bte = arena.buffer(("attn.bte", kid), (batch, src_len, enc_size))
        np.multiply(projected[:, None, :], enc, out=bte)
        scores = arena.buffer(("attn.scores", kid), (batch, src_len))
        bte.sum(axis=2, out=scores)
        np.tanh(scores, out=scores)
        if pad_mask is not None:
            scores[pad_mask] = mask_value
        weights_np = arena.buffer(("attn.weights", kid), (batch, src_len), rotate=2)
        np_stable_softmax(scores, axis=1, out=weights_np)
        np.multiply(weights_np[:, :, None], enc, out=bte)
        context_np = arena.buffer(("attn.context", kid), (batch, enc_size), rotate=2)
        bte.sum(axis=1, out=context_np)
        return Tensor(context_np), Tensor(weights_np)

    projected = d @ W  # (B, E)
    raw = (projected[:, None, :] * enc).sum(axis=2)  # (B, T)
    tanh_scores = np.tanh(raw)
    if pad_mask is not None:
        scores = np.where(pad_mask, mask_value, tanh_scores)
    else:
        scores = tanh_scores
    weights_np = np_stable_softmax(scores, axis=1)
    context_np = (weights_np[:, :, None] * enc).sum(axis=1)  # (B, E)

    out_data = np.concatenate([context_np, weights_np], axis=1)

    def backward(d_out: np.ndarray) -> None:
        d_ctx = d_out[:, :enc_size]
        d_weights = d_out[:, enc_size:].copy()
        # context = sum_t weights_t * enc_t  (batched GEMM beats einsum here)
        d_weights += np.matmul(enc, d_ctx[:, :, None])[:, :, 0]
        d_enc = weights_np[:, :, None] * d_ctx[:, None, :] if encoder_states.requires_grad else None
        # softmax backward (matches ops.softmax)
        inner = (d_weights * weights_np).sum(axis=1, keepdims=True)
        d_scores = weights_np * (d_weights - inner)
        # masked_fill backward: no gradient into padded positions
        if pad_mask is not None:
            d_scores = d_scores * ~pad_mask
        # tanh backward
        d_raw = d_scores * (1.0 - tanh_scores * tanh_scores)
        if encoder_states.requires_grad:
            d_enc += d_raw[:, :, None] * projected[:, None, :]
            encoder_states._accumulate_grad(d_enc)
        d_proj = np.matmul(d_raw[:, None, :], enc)[:, 0, :]
        if decoder_state.requires_grad:
            decoder_state._accumulate_grad(d_proj @ W.T)
        if weight.requires_grad:
            weight._accumulate_grad(d.T @ d_proj)

    parents = (decoder_state, encoder_states, weight)
    out = Tensor._from_op(out_data, parents, backward)
    return out[:, :enc_size], out[:, enc_size:]


def fused_pointer_probs(
    projected: Tensor,
    encoder_states: Tensor,
    score_bias: Tensor,
    pad_mask: np.ndarray,
    mask_value: float = -1e9,
) -> Tensor:
    """The ACNN Eq. 3 pointer score→mask→softmax chain as ONE tape node.

    ``projected`` is the copy projection ``V [d_k ; c_k] + b_1`` (kept as
    an eager Linear so its parameters stay ordinary tape parents);
    this kernel fuses the rest, byte-identical to the elementary chain::

        scores = (projected[:,None,:] * enc).sum(2) + score_bias  # (B, S)
        scores[pad] = mask_value
        probs  = softmax(scores, axis=1)

    Same execution tiers as :func:`fused_attention`: one tape node under
    gradients (hand-written backward), arena replay under ``no_grad``
    inside ``lazy()``.
    """
    p = projected.data
    enc = encoder_states.data
    batch, src_len, enc_size = enc.shape

    arena = arena_fast_path()
    if arena is not None:
        kid = id(score_bias)
        bte = arena.buffer(("copy.bte", kid), (batch, src_len, enc_size))
        np.multiply(p[:, None, :], enc, out=bte)
        scores = arena.buffer(("copy.scores", kid), (batch, src_len))
        bte.sum(axis=2, out=scores)
        scores += score_bias.data
        scores[pad_mask] = mask_value
        probs_np = arena.buffer(("copy.probs", kid), (batch, src_len), rotate=2)
        np_stable_softmax(scores, axis=1, out=probs_np)
        return Tensor(probs_np)

    raw = (p[:, None, :] * enc).sum(axis=2)  # (B, S)
    scores = raw + score_bias.data
    masked = np.where(pad_mask, mask_value, scores)
    probs_np = np_stable_softmax(masked, axis=1)

    def backward(d_probs: np.ndarray) -> None:
        # softmax backward (matches ops.softmax)
        inner = (d_probs * probs_np).sum(axis=1, keepdims=True)
        d_scores = probs_np * (d_probs - inner)
        # masked_fill backward
        d_scores = d_scores * ~pad_mask
        if score_bias.requires_grad:
            score_bias._accumulate_grad(d_scores)
        if encoder_states.requires_grad:
            encoder_states._accumulate_grad(d_scores[:, :, None] * p[:, None, :])
        if projected.requires_grad:
            projected._accumulate_grad(np.matmul(d_scores[:, None, :], enc)[:, 0, :])

    parents = (projected, encoder_states, score_bias)
    return Tensor._from_op(probs_np, parents, backward)
