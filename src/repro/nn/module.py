"""Module/Parameter system: parameter registration, state dicts, train/eval.

A minimal but complete reimplementation of the familiar layer-container
pattern so models can be composed declaratively and checkpointed by name.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.tensor.core import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor that is a learnable model parameter (always requires grad)."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; registration happens automatically, enabling
    :meth:`parameters`, :meth:`state_dict` and friends to walk the tree.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            if not value.name:
                value.name = name
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Tree traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs for the whole subtree."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        """All parameters in the subtree, in registration order."""
        return [param for _, param in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)`` pairs; the root has name ``""``.

        Names are stable across runs (registration order), which is what lets
        the resilience runtime key per-module RNG state by module path.
        """
        yield (prefix, self)
        for name, module in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_modules(prefix=child_prefix)

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Modes and gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout)."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients on every parameter in the subtree."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter array, keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values saved by :meth:`state_dict`.

        Raises
        ------
        KeyError
            If the state dict is missing a parameter or has extras.
        ValueError
            On any shape mismatch.
        """
        own = dict(self.named_parameters())
        missing = sorted(set(own) - set(state))
        unexpected = sorted(set(state) - set(own))
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={missing}, unexpected={unexpected}"
            )
        for name, param in own.items():
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"checkpoint {value.shape} vs model {param.data.shape}"
                )
            param.data[...] = value

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        """The layer's computation; subclasses must override."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"
