"""Global attention as specified in Section 3.1 of the paper.

The attention-based encoding of the input at decoding step ``k`` is

    c_k = sum_t a_{k,t} h_t
    a_{k,t} = softmax_t(e_{k,t})
    e_{k,t} = tanh(d_k^T W_h h_t)

where ``d_k`` is the decoder hidden state and ``h_t`` the (bidirectional)
encoder state at source position ``t``. Padding positions are excluded from
the softmax via a mask.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor.core import Tensor
from repro.tensor.lazy import is_lazy_enabled
from repro.tensor.ops import expand_dims, masked_fill, softmax, tanh

__all__ = ["GlobalAttention"]

_MASK_VALUE = -1e9


class GlobalAttention(Module):
    """Bilinear-scored global attention over encoder states.

    Parameters
    ----------
    decoder_size:
        Width of the decoder hidden state ``d_k``.
    encoder_size:
        Width of the per-position encoder state ``h_t`` (``2 * hidden`` for
        the bidirectional encoder).
    rng:
        Generator for the ``W_h`` init.
    """

    def __init__(
        self,
        decoder_size: int,
        encoder_size: int,
        rng: np.random.Generator,
        use_coverage: bool = False,
    ) -> None:
        super().__init__()
        self.decoder_size = decoder_size
        self.encoder_size = encoder_size
        self.weight = Parameter(init.xavier_uniform((decoder_size, encoder_size), rng), name="W_h")
        # Coverage extension (See et al. 2017): a learned scalar mixes the
        # accumulated attention history into the scores, discouraging the
        # decoder from re-attending (and re-emitting) the same positions.
        self.coverage_weight = Parameter(np.zeros(1), name="w_cov") if use_coverage else None

    def scores(self, decoder_state: Tensor, encoder_states: Tensor) -> Tensor:
        """Unnormalized scores ``e_{k,t} = tanh(d_k^T W_h h_t)``.

        Shapes: ``decoder_state`` is ``(B, decoder_size)``,
        ``encoder_states`` is ``(B, T, encoder_size)``; returns ``(B, T)``.
        """
        projected = decoder_state @ self.weight  # (B, encoder_size)
        raw = (expand_dims(projected, 1) * encoder_states).sum(axis=2)  # (B, T)
        return tanh(raw)

    def forward(
        self,
        decoder_state: Tensor,
        encoder_states: Tensor,
        pad_mask: np.ndarray | None = None,
        coverage: Tensor | None = None,
    ) -> tuple[Tensor, Tensor]:
        """Compute the context vector and attention weights.

        Parameters
        ----------
        decoder_state:
            ``(B, decoder_size)`` current decoder hidden state ``d_k``.
        encoder_states:
            ``(B, T, encoder_size)`` bidirectional encoder outputs.
        pad_mask:
            Optional ``(B, T)`` boolean array, True at padding positions.
        coverage:
            Optional ``(B, T)`` accumulated attention history; only valid
            when the layer was built with ``use_coverage=True``.

        Returns
        -------
        context, weights:
            ``context`` is ``(B, encoder_size)`` (``c_k`` in the paper);
            ``weights`` is ``(B, T)`` (``a_{k,t}``), summing to one over the
            non-padded positions.
        """
        if coverage is None and is_lazy_enabled():
            # Lazy mode: the whole score→mask→softmax→context chain runs as
            # one fused kernel (byte-identical numpy sequence; arena-replayed
            # under no_grad). Coverage mixes a history tensor into the scores
            # and keeps the elementary-op path below.
            from repro.nn.functional import fused_attention

            return fused_attention(
                decoder_state,
                encoder_states,
                self.weight,
                pad_mask=pad_mask,
                mask_value=_MASK_VALUE,
            )
        scores = self.scores(decoder_state, encoder_states)
        if coverage is not None:
            if self.coverage_weight is None:
                raise ValueError("attention layer was built without use_coverage=True")
            scores = scores + coverage * self.coverage_weight
        if pad_mask is not None:
            scores = masked_fill(scores, pad_mask, _MASK_VALUE)
        weights = softmax(scores, axis=1)
        context = (expand_dims(weights, 2) * encoder_states).sum(axis=1)
        return context, weights
