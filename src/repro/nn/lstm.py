"""LSTM layers: cell, stacked unidirectional LSTM, and bidirectional encoder.

Implements the recurrences of Section 3.1 of the paper: the encoder is a
bidirectional LSTM whose per-step hidden states are concatenated,
``h_t = [h_t_fwd ; h_t_bwd]``; the decoder is a (stacked) unidirectional LSTM
driven one step at a time.

Padding is handled with a boolean pad mask: at padded positions the recurrent
state is carried through unchanged, so variable-length batches give the same
final states as running each sequence alone.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn import init
from repro.nn.dropout import Dropout
from repro.nn.functional import lstm_cell_step, lstm_cell_step_preprojected
from repro.nn.module import Module, Parameter
from repro.tensor.core import Tensor
from repro.tensor.ops import concat, masked_fill, sigmoid, stack, tanh, where

__all__ = ["LSTMCell", "LSTM", "BidirectionalLSTM"]

State = tuple[Tensor, Tensor]


class LSTMCell(Module):
    """Single LSTM step.

    Gate layout inside the fused weight matrices is ``[input, forget, cell,
    output]``. The forget-gate bias is initialized to 1.0, the standard
    trick for stable early training.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(init.uniform((4 * hidden_size, input_size), rng))
        self.weight_hh = Parameter(init.uniform((4 * hidden_size, hidden_size), rng))
        bias = init.zeros((4 * hidden_size,))
        bias[hidden_size: 2 * hidden_size] = 1.0
        self.bias = Parameter(bias)

    def initial_state(self, batch_size: int) -> State:
        """Zero hidden and cell state for a batch."""
        zeros = np.zeros((batch_size, self.hidden_size))
        return Tensor(zeros), Tensor(zeros.copy())

    def forward(self, x: Tensor, state: State) -> State:
        """Advance one step; returns the new ``(hidden, cell)`` pair.

        Uses the fused single-op implementation; :meth:`forward_reference`
        keeps the transparent elementary-op formulation that the test suite
        checks the fused version against.
        """
        h_prev, c_prev = state
        return lstm_cell_step(x, h_prev, c_prev, self.weight_ih, self.weight_hh, self.bias)

    def forward_reference(self, x: Tensor, state: State) -> State:
        """The cell expressed in elementary tape ops (for verification)."""
        h_prev, c_prev = state
        gates = x @ self.weight_ih.T + h_prev @ self.weight_hh.T + self.bias
        hidden = self.hidden_size
        i_gate = sigmoid(gates[:, :hidden])
        f_gate = sigmoid(gates[:, hidden: 2 * hidden])
        g_gate = tanh(gates[:, 2 * hidden: 3 * hidden])
        o_gate = sigmoid(gates[:, 3 * hidden:])
        c_new = f_gate * c_prev + i_gate * g_gate
        h_new = o_gate * tanh(c_new)
        return h_new, c_new


class LSTM(Module):
    """Stacked unidirectional LSTM over a padded batch.

    Parameters
    ----------
    input_size, hidden_size:
        Feature sizes; all layers above the first take ``hidden_size`` input.
    num_layers:
        Stack depth (the paper uses 2).
    rng:
        Generator for weight init.
    dropout:
        Probability applied between stacked layers (paper: 0.3).
    dropout_seed:
        Seed for the inter-layer dropout masks.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
        dropout_seed: int = 0,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.cells: list[LSTMCell] = []
        for layer in range(num_layers):
            cell = LSTMCell(input_size if layer == 0 else hidden_size, hidden_size, rng)
            # Register each cell under a stable dotted name.
            setattr(self, f"cell_{layer}", cell)
            self.cells.append(cell)
        self.inter_layer_dropout = Dropout(dropout, seed=dropout_seed) if dropout > 0 else None

    def initial_states(self, batch_size: int) -> list[State]:
        """Zero states for every layer."""
        return [cell.initial_state(batch_size) for cell in self.cells]

    def step(self, x: Tensor, states: Sequence[State]) -> tuple[Tensor, list[State]]:
        """Advance the whole stack one timestep.

        Returns the top layer's hidden state and the new per-layer states.
        """
        new_states: list[State] = []
        layer_input = x
        for layer, cell in enumerate(self.cells):
            h_new, c_new = cell(layer_input, states[layer])
            new_states.append((h_new, c_new))
            layer_input = h_new
            if self.inter_layer_dropout is not None and layer < self.num_layers - 1:
                layer_input = self.inter_layer_dropout(layer_input)
        return layer_input, new_states

    def forward(
        self,
        inputs: Tensor,
        pad_mask: np.ndarray | None = None,
        initial_states: Sequence[State] | None = None,
        reverse: bool = False,
    ) -> tuple[Tensor, list[State]]:
        """Run over a full ``(batch, time, features)`` tensor.

        Parameters
        ----------
        inputs:
            Embedded sequence, shape ``(B, T, input_size)``.
        pad_mask:
            Optional boolean array ``(B, T)``; True marks padding. At padded
            steps the state is carried through unchanged and the emitted
            output is zero.
        initial_states:
            Optional per-layer ``(h, c)`` to start from.
        reverse:
            Process time steps from last to first (used by the backward
            direction of the bidirectional encoder). Outputs are returned in
            natural time order either way.

        Returns
        -------
        outputs, final_states:
            ``outputs`` is ``(B, T, hidden_size)`` from the top layer;
            ``final_states`` the per-layer state after the last step.
        """
        batch_size, time_steps = inputs.shape[0], inputs.shape[1]
        states = list(initial_states) if initial_states is not None else self.initial_states(batch_size)
        time_order = range(time_steps - 1, -1, -1) if reverse else range(time_steps)

        layer_input = inputs
        final_states: list[State] = []
        for layer, cell in enumerate(self.cells):
            # One batched matmul for every timestep's input projection; the
            # recurrence then only multiplies by W_hh per step.
            feature = layer_input.shape[2]
            projected = (
                layer_input.reshape(batch_size * time_steps, feature) @ cell.weight_ih.T
                + cell.bias
            ).reshape(batch_size, time_steps, 4 * cell.hidden_size)

            h, c = states[layer]
            outputs: list[Tensor | None] = [None] * time_steps
            for t in time_order:
                h_new, c_new = lstm_cell_step_preprojected(
                    projected[:, t, :], h, c, cell.weight_hh
                )
                if pad_mask is not None and pad_mask[:, t].any():
                    # Carry the state through padded positions unchanged.
                    pad_t = pad_mask[:, t: t + 1]
                    h_new = where(pad_t, h, h_new)
                    c_new = where(pad_t, c, c_new)
                h, c = h_new, c_new
                outputs[t] = h_new
            final_states.append((h, c))

            sequence = stack(outputs, axis=1)
            if pad_mask is not None:
                # Padded positions emit zeros.
                sequence = masked_fill(sequence, pad_mask[:, :, None], 0.0)
            if self.inter_layer_dropout is not None and layer < self.num_layers - 1:
                sequence = self.inter_layer_dropout(sequence)
            layer_input = sequence

        return layer_input, final_states


class BidirectionalLSTM(Module):
    """Bidirectional encoder: concatenated forward/backward hidden states.

    Produces ``h_t = [h_t_fwd ; h_t_bwd]`` of width ``2 * hidden_size`` per
    step, exactly the encoder representation of the paper's Section 3.1.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
        dropout_seed: int = 0,
    ) -> None:
        super().__init__()
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.forward_lstm = LSTM(
            input_size, hidden_size, num_layers, rng, dropout=dropout, dropout_seed=dropout_seed
        )
        self.backward_lstm = LSTM(
            input_size, hidden_size, num_layers, rng, dropout=dropout, dropout_seed=dropout_seed + 1
        )

    @property
    def output_size(self) -> int:
        return 2 * self.hidden_size

    def forward(
        self, inputs: Tensor, pad_mask: np.ndarray | None = None
    ) -> tuple[Tensor, list[State], list[State]]:
        """Encode a padded batch.

        Returns
        -------
        outputs, forward_states, backward_states:
            ``outputs`` is ``(B, T, 2 * hidden_size)``; the state lists hold
            each direction's final per-layer ``(h, c)``.
        """
        fwd_out, fwd_states = self.forward_lstm(inputs, pad_mask=pad_mask)
        bwd_out, bwd_states = self.backward_lstm(inputs, pad_mask=pad_mask, reverse=True)
        outputs = concat([fwd_out, bwd_out], axis=2)
        return outputs, fwd_states, bwd_states
