"""Token embedding layer with optional pre-trained initialization.

The paper initializes input embeddings from GloVe vectors (Pennington et al.,
2014); :meth:`Embedding.load_pretrained` accepts any ``(vocab, dim)`` matrix,
whether read from a real GloVe file or synthesized offline.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor.core import Tensor
from repro.tensor.ops import embedding_lookup

__all__ = ["Embedding"]


class Embedding(Module):
    """Lookup table mapping integer token ids to dense vectors.

    Parameters
    ----------
    num_embeddings:
        Vocabulary size.
    embedding_dim:
        Vector dimensionality.
    rng:
        Generator for random init.
    padding_idx:
        If given, that row is zero-initialized and its gradient is discarded
        after each backward pass via :meth:`zero_padding_grad` (the trainer
        calls it), keeping pad vectors at exactly zero.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator,
        padding_idx: int | None = None,
    ) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.padding_idx = padding_idx
        self.weight = Parameter(init.uniform((num_embeddings, embedding_dim), rng))
        if padding_idx is not None:
            self.weight.data[padding_idx] = 0.0

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"token id out of range [0, {self.num_embeddings}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        return embedding_lookup(self.weight, indices)

    def load_pretrained(self, matrix: np.ndarray) -> None:
        """Overwrite the table with pre-trained vectors (GloVe-style init)."""
        matrix = np.asarray(matrix)
        if matrix.shape != self.weight.data.shape:
            raise ValueError(
                f"pretrained matrix shape {matrix.shape} does not match "
                f"embedding table {self.weight.data.shape}"
            )
        self.weight.data[...] = matrix
        if self.padding_idx is not None:
            self.weight.data[self.padding_idx] = 0.0

    def zero_padding_grad(self) -> None:
        """Discard the gradient of the padding row (no-op without one)."""
        if self.padding_idx is not None and self.weight.grad is not None:
            self.weight.grad[self.padding_idx] = 0.0

    def __repr__(self) -> str:
        return (
            f"Embedding(vocab={self.num_embeddings}, dim={self.embedding_dim}, "
            f"padding_idx={self.padding_idx})"
        )
