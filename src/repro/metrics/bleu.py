"""BLEU (Papineni et al., 2002).

Implements standard corpus-level BLEU with modified (clipped) n-gram
precision, geometric mean over orders, and the brevity penalty — the same
definition as the classic ``multi-bleu.perl`` used by the OpenNMT pipeline
the paper was built on. ``BLEU-n`` in the paper's tables is the cumulative
score with maximum order ``n``; scores are reported on the 0-100 scale.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

from repro.metrics.ngram import ngram_counts

__all__ = ["corpus_bleu", "bleu_n_scores", "sentence_bleu"]

Tokens = Sequence[str]


def _clipped_matches(
    hypothesis: Tokens, references: Sequence[Tokens], n: int
) -> tuple[int, int]:
    """(clipped match count, total hypothesis n-grams) for one segment."""
    hyp_counts = ngram_counts(hypothesis, n)
    if not hyp_counts:
        return 0, 0
    max_ref: Counter = Counter()
    for reference in references:
        for gram, count in ngram_counts(reference, n).items():
            if count > max_ref[gram]:
                max_ref[gram] = count
    matches = sum(min(count, max_ref[gram]) for gram, count in hyp_counts.items())
    return matches, sum(hyp_counts.values())


def _closest_reference_length(hypothesis: Tokens, references: Sequence[Tokens]) -> int:
    hyp_len = len(hypothesis)
    return min((abs(len(r) - hyp_len), len(r)) for r in references)[1]


def corpus_bleu(
    hypotheses: Sequence[Tokens],
    references: Sequence[Sequence[Tokens]],
    max_n: int = 4,
    smooth_epsilon: float = 0.0,
) -> float:
    """Corpus BLEU on the 0-100 scale.

    Parameters
    ----------
    hypotheses:
        One token sequence per segment.
    references:
        For each segment, a list of one or more reference token sequences.
    max_n:
        Highest n-gram order (BLEU-4 is the default/headline metric).
    smooth_epsilon:
        If > 0, zero precisions are replaced by this value instead of
        zeroing the whole score (useful for tiny corpora; the paper-scale
        harness leaves it at 0).
    """
    if len(hypotheses) != len(references):
        raise ValueError(
            f"{len(hypotheses)} hypotheses vs {len(references)} reference sets"
        )
    if not hypotheses:
        raise ValueError("corpus_bleu needs at least one segment")

    matches = [0] * max_n
    totals = [0] * max_n
    hyp_length = 0
    ref_length = 0
    for hypothesis, refs in zip(hypotheses, references):
        if not refs:
            raise ValueError("every segment needs at least one reference")
        hyp_length += len(hypothesis)
        ref_length += _closest_reference_length(hypothesis, refs)
        for order in range(1, max_n + 1):
            m, t = _clipped_matches(hypothesis, refs, order)
            matches[order - 1] += m
            totals[order - 1] += t

    log_precisions = []
    for m, t in zip(matches, totals):
        if t == 0:
            return 0.0
        if m == 0:
            if smooth_epsilon <= 0:
                return 0.0
            m = smooth_epsilon
        log_precisions.append(math.log(m / t))  # numerics: ok — t == 0 returns early above

    geo_mean = math.exp(sum(log_precisions) / max_n)  # numerics: ok — max_n >= 1 validated
    brevity = 1.0 if hyp_length > ref_length else math.exp(1.0 - ref_length / max(1, hyp_length))
    return 100.0 * brevity * geo_mean


def bleu_n_scores(
    hypotheses: Sequence[Tokens],
    references: Sequence[Sequence[Tokens]],
    max_n: int = 4,
    smooth_epsilon: float = 0.0,
) -> dict[str, float]:
    """BLEU-1 .. BLEU-``max_n`` as reported in the paper's tables."""
    return {
        f"BLEU-{n}": corpus_bleu(hypotheses, references, max_n=n, smooth_epsilon=smooth_epsilon)
        for n in range(1, max_n + 1)
    }


def sentence_bleu(
    hypothesis: Tokens,
    references: Sequence[Tokens],
    max_n: int = 4,
    smooth_epsilon: float = 0.1,
) -> float:
    """Single-segment BLEU with epsilon smoothing (for inspection/examples).

    The order is capped at the hypothesis length so a 2-token output is
    scored as BLEU-2 rather than an automatic zero.
    """
    effective_n = max(1, min(max_n, len(hypothesis)))
    return corpus_bleu(
        [hypothesis], [references], max_n=effective_n, smooth_epsilon=smooth_epsilon
    )
