"""Evaluation metrics: BLEU-n (Papineni 2002) and ROUGE-L (Lin 2004)."""

from repro.metrics.bleu import bleu_n_scores, corpus_bleu, sentence_bleu
from repro.metrics.diversity import distinct_n, unique_output_ratio
from repro.metrics.ngram import ngram_counts, ngrams
from repro.metrics.rouge import corpus_rouge_l, lcs_length, rouge_l_sentence

__all__ = [
    "bleu_n_scores",
    "corpus_bleu",
    "sentence_bleu",
    "distinct_n",
    "unique_output_ratio",
    "ngram_counts",
    "ngrams",
    "corpus_rouge_l",
    "lcs_length",
    "rouge_l_sentence",
]
