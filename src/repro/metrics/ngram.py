"""N-gram counting utilities shared by the BLEU implementation."""

from __future__ import annotations

from collections import Counter
from typing import Sequence

__all__ = ["ngrams", "ngram_counts"]


def ngrams(tokens: Sequence[str], n: int) -> list[tuple[str, ...]]:
    """All contiguous n-grams of ``tokens`` (empty when too short)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return [tuple(tokens[i: i + n]) for i in range(len(tokens) - n + 1)]


def ngram_counts(tokens: Sequence[str], n: int) -> Counter:
    """Multiset of n-grams as a Counter."""
    return Counter(ngrams(tokens, n))
