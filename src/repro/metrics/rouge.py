"""ROUGE-L (Lin, 2004).

Longest-common-subsequence based recall/precision/F-measure. The corpus
score is the mean of per-segment F scores with the conventional ``beta``
weighting used by the coco-caption evaluation stack (beta = 1.2), which is
what the question-generation literature (Du et al., and hence this paper)
reports as "ROUGE-L" on the 0-100 scale.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["lcs_length", "rouge_l_sentence", "corpus_rouge_l"]

Tokens = Sequence[str]


def lcs_length(a: Tokens, b: Tokens) -> int:
    """Length of the longest common subsequence of two token sequences."""
    if not a or not b:
        return 0
    # Single-row dynamic program: O(len(a) * len(b)) time, O(len(b)) space.
    previous = [0] * (len(b) + 1)
    for token_a in a:
        current = [0] * (len(b) + 1)
        for j, token_b in enumerate(b, start=1):
            if token_a == token_b:
                current[j] = previous[j - 1] + 1
            else:
                current[j] = max(previous[j], current[j - 1])
        previous = current
    return previous[-1]


def rouge_l_sentence(
    hypothesis: Tokens,
    references: Sequence[Tokens],
    beta: float = 1.2,
) -> float:
    """Per-segment ROUGE-L F-measure in [0, 1] (max over references)."""
    if not references:
        raise ValueError("rouge_l_sentence needs at least one reference")
    best = 0.0
    for reference in references:
        lcs = lcs_length(hypothesis, reference)
        if lcs == 0:
            continue
        precision = lcs / len(hypothesis)
        recall = lcs / len(reference)
        score = ((1 + beta ** 2) * precision * recall) / (recall + beta ** 2 * precision)  # numerics: ok — lcs > 0 here, so precision+recall > 0
        best = max(best, score)
    return best


def corpus_rouge_l(
    hypotheses: Sequence[Tokens],
    references: Sequence[Sequence[Tokens]],
    beta: float = 1.2,
) -> float:
    """Mean per-segment ROUGE-L F on the 0-100 scale."""
    if len(hypotheses) != len(references):
        raise ValueError(
            f"{len(hypotheses)} hypotheses vs {len(references)} reference sets"
        )
    if not hypotheses:
        raise ValueError("corpus_rouge_l needs at least one segment")
    total = sum(
        rouge_l_sentence(hyp, refs, beta=beta) for hyp, refs in zip(hypotheses, references)
    )
    return 100.0 * total / len(hypotheses)
