"""Generation-diversity metrics (distinct-n, Li et al. 2016).

Complements BLEU/ROUGE when the decoder is used to produce question *sets*
(n-best or sampling): distinct-n is the fraction of unique n-grams across
all generated outputs, and self-BLEU-free pairwise uniqueness measures how
different the candidates for one source are.
"""

from __future__ import annotations

from typing import Sequence

from repro.metrics.ngram import ngrams

__all__ = ["distinct_n", "unique_output_ratio"]

Tokens = Sequence[str]


def distinct_n(outputs: Sequence[Tokens], n: int = 2) -> float:
    """Unique n-grams divided by total n-grams across all outputs.

    1.0 means every n-gram is unique (maximal diversity); values near 0 mean
    the generator repeats itself. Outputs too short for any n-gram are
    skipped; if nothing yields an n-gram the result is 0.0.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    total = 0
    unique: set[tuple[str, ...]] = set()
    for output in outputs:
        grams = ngrams(list(output), n)
        total += len(grams)
        unique.update(grams)
    return len(unique) / total if total else 0.0  # numerics: ok — inline zero-check ternary


def unique_output_ratio(outputs: Sequence[Tokens]) -> float:
    """Fraction of outputs that are distinct as whole sequences."""
    if not outputs:
        raise ValueError("unique_output_ratio needs at least one output")
    return len({tuple(output) for output in outputs}) / len(outputs)
