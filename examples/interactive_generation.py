"""Interactive question generation from your own sentences.

    python examples/interactive_generation.py            # stdin loop
    python examples/interactive_generation.py --demo     # canned sentences

Trains an ACNN on the synthetic corpus (once, ~30s), then reads sentences,
tokenizes them, and beam-decodes a question for each. Entities the decoder
has never seen are handled by the copy mechanism — type a sentence with a
made-up name and watch it reappear in the question.
"""

import argparse
import sys

from repro.data import (
    BatchIterator,
    QGDataset,
    QGExample,
    SyntheticConfig,
    detokenize,
    generate_corpus,
    tokenize,
)
from repro.data.batching import collate
from repro.decoding import beam_decode, extended_ids_to_tokens
from repro.models import ModelConfig, build_model
from repro.training import Trainer, TrainerConfig

DEMO_SENTENCES = [
    "velkorim was born in porzana in 1873 .",
    "the glass spire in almira was designed by tovenka .",
    "frostline acquired brightora for 420 million dollars in 2011 .",
]


def train_model():
    print("training an ACNN on the synthetic corpus (one-time, ~30s)...")
    corpus = generate_corpus(SyntheticConfig(num_train=1200, num_dev=150, num_test=150, seed=13))
    encoder_vocab, decoder_vocab = QGDataset.build_vocabs(
        corpus.train, encoder_vocab_size=1200, decoder_vocab_size=140
    )
    train_set = QGDataset(corpus.train, encoder_vocab, decoder_vocab)
    dev_set = QGDataset(corpus.dev, encoder_vocab, decoder_vocab)
    config = ModelConfig(embedding_dim=28, hidden_size=48, num_layers=1, dropout=0.2, seed=2)
    model = build_model("acnn", config, len(encoder_vocab), len(decoder_vocab))
    Trainer(
        model,
        BatchIterator(train_set, batch_size=32, seed=2),
        BatchIterator(dev_set, batch_size=32, shuffle=False),
        TrainerConfig(epochs=10, learning_rate=1.0, halve_at_epoch=8),
    ).train()
    return model, encoder_vocab, decoder_vocab


def generate(model, encoder_vocab, decoder_vocab, sentence: str) -> str:
    tokens = tuple(tokenize(sentence))
    if not tokens:
        return "(no tokens)"
    example = QGExample(sentence=tokens, paragraph=tokens, question=("?",))
    dataset = QGDataset([example], encoder_vocab, decoder_vocab)
    batch = collate(list(dataset), pad_id=0)
    hypothesis = beam_decode(model, batch, beam_size=3, max_length=20)[0]
    out_tokens = extended_ids_to_tokens(
        hypothesis.token_ids, decoder_vocab, batch.examples[0].oov_tokens
    )
    return detokenize(out_tokens)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--demo", action="store_true", help="run on canned sentences and exit")
    args = parser.parse_args()

    model, encoder_vocab, decoder_vocab = train_model()

    if args.demo:
        for sentence in DEMO_SENTENCES:
            print(f"> {sentence}")
            print(f"  {generate(model, encoder_vocab, decoder_vocab, sentence)}")
        return

    print("enter a sentence (empty line or Ctrl-D to quit):")
    for line in sys.stdin:
        line = line.strip()
        if not line:
            break
        print(f"  {generate(model, encoder_vocab, decoder_vocab, line)}")
        print("> ", end="", flush=True)


if __name__ == "__main__":
    main()
