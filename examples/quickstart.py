"""Quickstart: train a small ACNN and generate questions.

Runs in about a minute on one CPU core:

    python examples/quickstart.py

Steps: generate a synthetic SQuAD-style corpus, build vocabularies, train
the adaptive copying model for a few epochs, then beam-decode questions for
unseen test sentences — including copied entity names that are not in the
decoder vocabulary (the paper's headline capability).
"""

from repro.data import BatchIterator, QGDataset, SyntheticConfig, detokenize, generate_corpus
from repro.decoding import beam_decode, extended_ids_to_tokens
from repro.data.batching import collate
from repro.models import ModelConfig, build_model
from repro.training import Trainer, TrainerConfig


def main() -> None:
    print("1. generating a synthetic SQuAD-style corpus...")
    corpus = generate_corpus(SyntheticConfig(num_train=1200, num_dev=100, num_test=80, seed=7))
    encoder_vocab, decoder_vocab = QGDataset.build_vocabs(
        corpus.train, encoder_vocab_size=1200, decoder_vocab_size=130
    )
    train_set = QGDataset(corpus.train, encoder_vocab, decoder_vocab)
    dev_set = QGDataset(corpus.dev, encoder_vocab, decoder_vocab)
    test_set = QGDataset(corpus.test, encoder_vocab, decoder_vocab)
    print(
        f"   {len(train_set)} train / {len(dev_set)} dev / {len(test_set)} test; "
        f"encoder vocab {len(encoder_vocab)}, decoder vocab {len(decoder_vocab)}"
    )
    print(
        f"   {100 * test_set.copyable_oov_rate():.1f}% of gold question tokens are "
        "decoder-OOV and only reachable through the copy mechanism"
    )

    print("2. training ACNN-sent (bi-LSTM + attention + adaptive copying)...")
    config = ModelConfig(embedding_dim=24, hidden_size=48, num_layers=1, dropout=0.1, seed=1)
    # use_coverage suppresses the repeated-phrase stutter of small,
    # briefly-trained attentional decoders (see the coverage ablation).
    model = build_model("acnn", config, len(encoder_vocab), len(decoder_vocab), use_coverage=True)
    trainer = Trainer(
        model,
        BatchIterator(train_set, batch_size=32, seed=1),
        BatchIterator(dev_set, batch_size=32, shuffle=False),
        TrainerConfig(epochs=16, learning_rate=1.0, halve_at_epoch=12),
        epoch_callback=lambda r: print(
            f"   epoch {r.epoch}: train loss {r.train_loss:.3f}, dev loss {r.dev_loss:.3f}"
        ),
    )
    trainer.train()

    print("3. generating questions for unseen test sentences (beam=3):")
    batch = collate(test_set.encoded[:6], pad_id=0)
    hypotheses = beam_decode(model, batch, beam_size=3, max_length=20)
    for hypothesis, encoded in zip(hypotheses, batch.examples):
        tokens = extended_ids_to_tokens(hypothesis.token_ids, decoder_vocab, encoded.oov_tokens)
        copied = [t for t in tokens if t not in decoder_vocab]
        print(f"   source:    {detokenize(list(encoded.src_tokens))}")
        print(f"   gold:      {detokenize(list(encoded.example.question))}")
        print(f"   generated: {detokenize(tokens)}")
        if copied:
            print(f"   copied out-of-vocabulary tokens: {copied}")
        print()


if __name__ == "__main__":
    main()
