"""Generate a question-answer dataset — the application the paper motivates.

    python examples/generate_qa_pairs.py [--out qa_pairs.json]

"question generation can also be used to produce large scale
question-answer pairs to assist question answering" (paper, §1). This
example trains an ACNN, optionally doubles its training data with
entity-renaming augmentation, then emits an n-best list of questions per
unseen sentence together with the answer span, as JSON.
"""

import argparse
import json

from repro.data import (
    BatchIterator,
    QGDataset,
    SyntheticConfig,
    augment_examples,
    collate,
    detokenize,
    generate_corpus,
)
from repro.decoding import beam_decode_nbest, extended_ids_to_tokens
from repro.models import ModelConfig, build_model
from repro.training import Trainer, TrainerConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="qa_pairs.json")
    parser.add_argument("--num-sources", type=int, default=20)
    parser.add_argument("--n-best", type=int, default=3)
    parser.add_argument("--augment", action="store_true", help="double training data by entity renaming")
    args = parser.parse_args()

    corpus = generate_corpus(SyntheticConfig(num_train=1000, num_dev=100, num_test=100, seed=13))
    train_examples = list(corpus.train)
    if args.augment:
        train_examples = augment_examples(train_examples, factor=1, seed=1)
        print(f"augmented training data to {len(train_examples)} examples")

    encoder_vocab, decoder_vocab = QGDataset.build_vocabs(
        train_examples, encoder_vocab_size=1500, decoder_vocab_size=140
    )
    train_set = QGDataset(train_examples, encoder_vocab, decoder_vocab)
    test_set = QGDataset(corpus.test, encoder_vocab, decoder_vocab)

    print("training ACNN...")
    config = ModelConfig(embedding_dim=28, hidden_size=48, num_layers=1, dropout=0.2, seed=2)
    model = build_model("acnn", config, len(encoder_vocab), len(decoder_vocab))
    Trainer(
        model,
        BatchIterator(train_set, batch_size=32, seed=2),
        None,
        TrainerConfig(epochs=8, learning_rate=1.0, halve_at_epoch=6),
    ).train()

    print(f"generating {args.n_best}-best questions for {args.num_sources} sources...")
    records = []
    batch = collate(test_set.encoded[: args.num_sources], pad_id=0)
    nbest_lists = beam_decode_nbest(
        model, batch, n_best=args.n_best, beam_size=args.n_best + 2, max_length=20
    )
    for candidates, encoded in zip(nbest_lists, batch.examples):
        questions = []
        for hypothesis in candidates:
            tokens = extended_ids_to_tokens(
                hypothesis.token_ids, decoder_vocab, encoded.oov_tokens
            )
            questions.append(
                {"question": detokenize(tokens), "score": round(hypothesis.score(1.0), 4)}
            )
        records.append(
            {
                "source": detokenize(list(encoded.src_tokens)),
                "answer": detokenize(list(encoded.example.answer)),
                "questions": questions,
            }
        )

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(records, handle, indent=2)
    print(f"wrote {len(records)} QA records to {args.out}")
    for record in records[:3]:
        print(f"\nsource: {record['source']}")
        print(f"answer: {record['answer']}")
        for q in record["questions"]:
            print(f"  {q['score']:+.3f}  {q['question']}")


if __name__ == "__main__":
    main()
