"""Paragraph-length study — a scaled-down interactive version of Table 2.

    python examples/paragraph_length_study.py [--lengths 100 120 150]

Trains ACNN-para once per truncation length on a shared corpus and prints
the paper-style comparison table. Demonstrates the paper's Section 4.2
finding: longer truncation windows admit more distractor noise and hurt
every metric.
"""

import argparse

from repro.data.dataset import SourceMode
from repro.data.synthetic import generate_corpus
from repro.evaluation import format_table
from repro.experiments.configs import DEFAULT
from repro.experiments.runner import SystemSpec, run_system


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--lengths", type=int, nargs="+", default=[100, 120, 150])
    parser.add_argument("--train-size", type=int, default=1000)
    parser.add_argument("--epochs", type=int, default=6)
    args = parser.parse_args()

    scale = DEFAULT.scaled(
        num_train=args.train_size,
        num_dev=150,
        num_test=150,
        epochs=args.epochs,
        halve_at_epoch=max(2, args.epochs - 1),
    )
    corpus = generate_corpus(scale.synthetic_config())

    rows = {}
    for length in args.lengths:
        label = f"ACNN-para-{length}"
        print(f"training {label} ...")
        spec = SystemSpec(
            key=label, label=label, family="acnn", source_mode=SourceMode.PARAGRAPH, seed_offset=4
        )
        run = run_system(spec, scale, corpus=corpus, paragraph_length=length)
        rows[label] = run.scores
        print(f"  {run.result.summary()} ({run.train_seconds:.0f}s)")

    print()
    print(format_table(rows, title="Paragraph-length study (cf. paper Table 2)"))
    print(
        "\npaper's finding: scores decrease as the truncation window grows "
        "past 100 tokens (more context, more noise)."
    )


if __name__ == "__main__":
    main()
