"""Full training pipeline with checkpointing, history, and evaluation.

    python examples/train_on_synthetic_squad.py [--family acnn]
        [--mode sentence|paragraph] [--epochs 8] [--out runs/demo]

Trains one system on the synthetic SQuAD-style corpus with the paper's
recipe (SGD lr=1.0 halved mid-training, clipping, dropout, pre-trained
pseudo-GloVe embeddings), checkpoints the best-dev model, saves the training
history as JSON, and reports BLEU-1..4 / ROUGE-L on the test split.
"""

import argparse
import os

from repro.data import BatchIterator, QGDataset, SourceMode, SyntheticConfig, generate_corpus
from repro.data.embeddings import embedding_matrix_for_vocab, pseudo_glove
from repro.evaluation import evaluate_model
from repro.models import ModelConfig, build_model
from repro.training import Trainer, TrainerConfig, save_checkpoint

import numpy as np


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--family", default="acnn", choices=["acnn", "du-attention", "seq2seq"])
    parser.add_argument("--mode", default="sentence", choices=["sentence", "paragraph"])
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--train-size", type=int, default=1500)
    parser.add_argument("--hidden", type=int, default=48)
    parser.add_argument("--out", default="runs/demo")
    parser.add_argument(
        "--detect-anomaly",
        action="store_true",
        help="check every tape op for NaN/inf; first hit names the culprit op (slower)",
    )
    parser.add_argument(
        "--overflow-policy",
        choices=["skip", "rollback", "raise"],
        default="rollback",
        help="non-finite batch reaction: quarantine-and-continue, snapshot rollback, or hard fail",
    )
    args = parser.parse_args()

    print(f"generating corpus ({args.train_size} train examples)...")
    corpus = generate_corpus(
        SyntheticConfig(num_train=args.train_size, num_dev=200, num_test=200, seed=13)
    )
    source_mode = SourceMode.SENTENCE if args.mode == "sentence" else SourceMode.PARAGRAPH
    encoder_vocab, decoder_vocab = QGDataset.build_vocabs(
        corpus.train, encoder_vocab_size=1500, decoder_vocab_size=150, source_mode=source_mode
    )
    splits = {
        name: QGDataset(split, encoder_vocab, decoder_vocab, source_mode=source_mode)
        for name, split in (("train", corpus.train), ("dev", corpus.dev), ("test", corpus.test))
    }

    print(f"building {args.family} ({args.mode} encoder, hidden={args.hidden})...")
    config = ModelConfig(embedding_dim=32, hidden_size=args.hidden, num_layers=2, dropout=0.3, seed=1)
    model = build_model(args.family, config, len(encoder_vocab), len(decoder_vocab))
    print(f"  {model.num_parameters():,} parameters")

    # GloVe-style init (offline pseudo-GloVe; swap in load_glove_text for the real file).
    rng = np.random.default_rng(99)
    for vocab, table in ((encoder_vocab, model.encoder_embedding), (decoder_vocab, model.decoder_embedding)):
        vectors = pseudo_glove(vocab.tokens, config.embedding_dim, seed=13)
        table.load_pretrained(embedding_matrix_for_vocab(vocab, vectors, config.embedding_dim, rng))

    trainer = Trainer(
        model,
        BatchIterator(splits["train"], batch_size=32, seed=1),
        BatchIterator(splits["dev"], batch_size=32, shuffle=False),
        TrainerConfig(
            epochs=args.epochs,
            learning_rate=1.0,
            halve_at_epoch=max(2, args.epochs - 2),
            detect_anomaly=args.detect_anomaly,
            overflow_policy=args.overflow_policy,
        ),
        epoch_callback=lambda r: print(
            f"  epoch {r.epoch}: train {r.train_loss:.3f} (ppl {r.train_perplexity:.1f}), "
            f"dev {r.dev_loss:.3f}, lr {r.learning_rate:g}"
        ),
    )
    history = trainer.train()

    os.makedirs(args.out, exist_ok=True)
    save_checkpoint(
        os.path.join(args.out, "model"),
        model,
        metadata={
            "family": args.family,
            "mode": args.mode,
            "best_dev_epoch": history.best_dev_epoch,
            "encoder_vocab": len(encoder_vocab),
            "decoder_vocab": len(decoder_vocab),
        },
    )
    history.save(os.path.join(args.out, "history.json"))
    print(f"checkpoint + history written to {args.out}/")

    print("evaluating on the test split (beam=3)...")
    result = evaluate_model(model, splits["test"], beam_size=3, max_length=24)
    print("  " + result.summary())


if __name__ == "__main__":
    main()
