"""Train the three model families side by side — a mini Table 1.

    python examples/compare_baselines.py [--train-size 1000 --epochs 6]

Shows the paper's central comparison at laptop scale: the plain Seq2Seq
baseline cannot name entities at all, the Du et al. attention model does
better on function words, and the ACNN wins by copying entities out of the
source.
"""

import argparse

from repro.data.synthetic import generate_corpus
from repro.evaluation import format_table
from repro.experiments.configs import DEFAULT
from repro.experiments.runner import TABLE1_SYSTEMS, run_system


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--train-size", type=int, default=1000)
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument(
        "--include-paragraph",
        action="store_true",
        help="also train the slower -para variants (full Table 1)",
    )
    args = parser.parse_args()

    scale = DEFAULT.scaled(
        num_train=args.train_size,
        num_dev=150,
        num_test=150,
        epochs=args.epochs,
        halve_at_epoch=max(2, args.epochs - 1),
    )
    corpus = generate_corpus(scale.synthetic_config())

    systems = [
        spec for spec in TABLE1_SYSTEMS
        if args.include_paragraph or spec.source_mode == "sentence"
    ]
    rows = {}
    for spec in systems:
        print(f"training {spec.label} ({spec.family}, {spec.source_mode}) ...")
        run = run_system(spec, scale, corpus=corpus)
        rows[spec.label] = run.scores
        print(f"  {run.result.summary()} ({run.train_seconds:.0f}s)")

    print()
    print(format_table(rows, title="Model comparison (cf. paper Table 1)"))

    print(
        "\nexpected shape: ACNN > Du-attention > Seq2Seq on every metric, "
        "driven by copied out-of-vocabulary entities."
    )


if __name__ == "__main__":
    main()
