"""Look inside the adaptive switch gate while the model generates.

    python examples/inspect_copying.py

Trains a small ACNN, then replays greedy decoding step by step, printing for
every emitted token the gate value z_k (Eq. 4), whether the token was copied
from the source, and where the attention looked. Ends with the aggregate
adaptivity statistics: on a working ACNN the mean gate at copy steps is far
above the mean gate at generation steps — the paper's "data adaptive
selection" made visible.
"""

from repro.data import BatchIterator, QGDataset, SyntheticConfig, generate_corpus
from repro.evaluation import gate_statistics, render_trace, trace_generation
from repro.models import ModelConfig, build_model
from repro.training import Trainer, TrainerConfig


def main() -> None:
    print("training a small ACNN (~30s)...")
    corpus = generate_corpus(SyntheticConfig(num_train=1000, num_dev=120, num_test=120, seed=13))
    encoder_vocab, decoder_vocab = QGDataset.build_vocabs(
        corpus.train, encoder_vocab_size=1200, decoder_vocab_size=140
    )
    train_set = QGDataset(corpus.train, encoder_vocab, decoder_vocab)
    test_set = QGDataset(corpus.test, encoder_vocab, decoder_vocab)

    config = ModelConfig(embedding_dim=28, hidden_size=48, num_layers=1, dropout=0.2, seed=2)
    model = build_model("acnn", config, len(encoder_vocab), len(decoder_vocab))
    Trainer(
        model,
        BatchIterator(train_set, batch_size=32, seed=2),
        None,
        TrainerConfig(epochs=10, learning_rate=1.0, halve_at_epoch=8),
    ).train()

    print("\nper-step traces on unseen test sentences:\n")
    traces = []
    for encoded in test_set.encoded[:3]:
        trace = trace_generation(model, encoded, decoder_vocab, max_length=16)
        traces.append(trace)
        print(render_trace(trace))
        print()

    traces += [
        trace_generation(model, encoded, decoder_vocab, max_length=16)
        for encoded in test_set.encoded[3:40]
    ]
    stats = gate_statistics(traces)
    print("aggregate adaptivity over 40 test examples:")
    print(f"  steps traced:                 {int(stats['steps'])}")
    print(f"  copy rate:                    {100 * stats['copy_rate']:.1f}%")
    print(f"  mean z when copying:          {stats['mean_switch_when_copying']:.3f}")
    print(f"  mean z when generating:       {stats['mean_switch_when_generating']:.3f}")
    print(
        "\nEq. 4's gate is data adaptive: it opens (z -> 1) exactly at the steps "
        "that copy source entities and closes for function words."
    )


if __name__ == "__main__":
    main()
